"""Smoke and invariant tests for the experiment harness (reduced settings).

The full grids are exercised by the benchmark suite; here every experiment
module is run with tiny horizons to validate row structure and the headline
invariants that the rest of the repository depends on.
"""

import pytest

from repro.dnn.zoo import build_model
from repro.experiments import fig2_staging, table2_tasksets
from repro.experiments.runner import run_daris_scenario
from repro.experiments.scenarios import (
    best_config_for,
    horizon_ms,
    main_grid,
    mps_configs,
    oversubscription_options,
    str_configs,
    worst_dmr_config,
)
from repro.rt.taskset import table2_taskset
from repro.scheduler.config import DarisConfig, Policy


def test_oversubscription_options_respect_bounds():
    assert oversubscription_options(1) == [1.0]
    options = oversubscription_options(6)
    assert options[0] == 1.0 and options[-1] == 6.0
    assert all(1.0 <= value <= 6.0 for value in options)
    assert len(oversubscription_options(6, quick=True)) <= 2


def test_main_grid_covers_all_policies():
    grid = main_grid(quick=True)
    policies = {config.policy for config in grid}
    assert policies == {Policy.STR, Policy.MPS, Policy.MPS_STR}
    assert all(2 <= config.max_parallel_jobs <= 10 for config in grid)
    assert len(main_grid(quick=False)) > len(grid)


def test_best_and_worst_configs_match_paper():
    assert best_config_for("resnet18").label() == "MPS 6x1 OS6"
    assert best_config_for("inceptionv3").label() == "MPS 8x1 OS8"
    assert worst_dmr_config().label() == "MPS+STR 3x3 OS1"
    assert horizon_ms(quick=True) < horizon_ms(quick=False)


def test_str_and_mps_config_lists_have_expected_shapes():
    assert all(config.policy is Policy.STR for config in str_configs())
    assert all(config.policy is Policy.MPS for config in mps_configs(quick=True))


def test_runner_produces_scenario_result(resnet18):
    taskset = table2_taskset("resnet18", model=resnet18, scale=0.3)
    result = run_daris_scenario(
        taskset, DarisConfig.mps_config(3, 3.0), horizon_ms=800.0, seed=2, with_trace=True
    )
    assert result.total_jps > 0
    assert result.trace is not None and result.trace.stage_records
    assert result.label == "MPS 3x1 OS3"
    assert 0.0 <= result.lp_dmr <= 1.0 and 0.0 <= result.hp_dmr <= 1.0


def test_table2_experiment_rows_match_paper():
    rows = table2_tasksets.run()
    assert len(rows) == 3
    for row in rows:
        assert row["num_high"] == row["paper_high"]
        assert row["num_low"] == row["paper_low"]


def test_fig2_virtual_deadline_rows_are_consistent():
    rows = fig2_staging.run()
    models = {row["model"] for row in rows}
    assert models == {"resnet18", "resnet50", "unet", "inceptionv3"}
    for model in models:
        fractions = [row["deadline_fraction"] for row in rows if row["model"] == model]
        assert sum(fractions) == pytest.approx(1.0, abs=0.02)


def test_fig2_main_renders_a_table(capsys):
    text = fig2_staging.main()
    captured = capsys.readouterr()
    assert "resnet18" in text
    assert "resnet18" in captured.out


def test_paper_highlights_present_for_every_main_figure():
    from repro.experiments.fig4_6_main import PAPER_HIGHLIGHTS

    assert set(PAPER_HIGHLIGHTS) == {"resnet18", "unet", "inceptionv3"}
    for name, values in PAPER_HIGHLIGHTS.items():
        model = build_model(name)
        assert values["lower_baseline"] == model.profile.single_stream_jps
