"""Tests for the baseline executors and schedulers."""

import pytest

from repro.baselines.batching_server import BatchingServer, saturated_batching_jps
from repro.baselines.clockwork import ClockworkServer
from repro.baselines.gslice import GSliceServer
from repro.baselines.rtgpu import RtgpuScheduler
from repro.baselines.single import SingleTenantExecutor
from repro.rt.taskset import make_taskset
from repro.scheduler.config import DarisConfig

HORIZON = 800.0


def test_single_tenant_matches_table1_min_jps(resnet18):
    executor = SingleTenantExecutor(resnet18)
    jps = executor.run(HORIZON)
    assert jps == pytest.approx(627.0, rel=0.05)
    assert executor.measured_latency_ms() == pytest.approx(1.6, rel=0.1)


def test_single_tenant_unet_and_inception(unet, inceptionv3):
    assert SingleTenantExecutor(unet).run(HORIZON) == pytest.approx(241.0, rel=0.05)
    assert SingleTenantExecutor(inceptionv3).run(HORIZON) == pytest.approx(142.0, rel=0.06)


def test_single_tenant_rejects_bad_horizon(resnet18):
    with pytest.raises(ValueError):
        SingleTenantExecutor(resnet18).run(0.0)


def test_batching_server_saturated_approaches_table1_max(resnet18):
    jps = saturated_batching_jps(resnet18, batch_size=16, horizon_ms=HORIZON)
    assert jps == pytest.approx(1025.0, rel=0.07)


def test_batching_server_gain_ordering_across_models(unet, inceptionv3):
    unet_gain = saturated_batching_jps(unet, 8, HORIZON) / 241.0
    inception_gain = saturated_batching_jps(inceptionv3, 8, HORIZON) / 142.0
    assert inception_gain > 2.0
    assert unet_gain < 1.3


def test_batching_server_records_batch_latencies(resnet18):
    server = BatchingServer(resnet18, batch_size=4)
    server.run_saturated(200.0)
    assert server.completed_batches > 0
    assert server.completed_jobs == server.completed_batches * 4
    assert all(latency > 0 for latency in server.batch_latencies_ms)


def test_batching_server_rejects_invalid_batch(resnet18):
    with pytest.raises(ValueError):
        BatchingServer(resnet18, batch_size=0)


def test_batching_with_arrivals_reports_deadline_misses(resnet18):
    server = BatchingServer(resnet18, batch_size=8)
    # Slow arrivals with tight deadlines: waiting for the batch to fill causes misses,
    # which is the paper's argument against batching for real-time inference.
    summary = server.run_with_arrivals(
        arrival_rate_jps=100.0, deadline_ms=20.0, horizon_ms=1000.0
    )
    assert summary["completed"] > 0
    assert summary["deadline_miss_rate"] > 0.2


def test_gslice_partitions_run_every_model(resnet18, unet):
    server = GSliceServer([resnet18, unet], batch_sizes=[8, 2])
    results = server.run_saturated(HORIZON)
    assert results["resnet18"] > 0 and results["unet"] > 0
    assert results["total"] == pytest.approx(results["resnet18"] + results["unet"])
    # Isolated halves cannot beat the whole-GPU batching baseline per model.
    assert results["resnet18"] < 1025.0


def test_gslice_validation(resnet18):
    with pytest.raises(ValueError):
        GSliceServer([])
    with pytest.raises(ValueError):
        GSliceServer([resnet18], batch_sizes=[1, 2])


def test_clockwork_serves_feasible_load_without_misses(resnet18):
    taskset = make_taskset([resnet18], num_high=2, num_low=2, task_jps=20.0)
    summary = ClockworkServer().run_taskset(taskset, HORIZON)
    assert summary["throughput_jps"] > 0
    assert summary["deadline_miss_rate"] <= 0.05
    assert summary["drop_rate"] <= 0.05


def test_clockwork_drops_when_overloaded(resnet18):
    taskset = make_taskset([resnet18], num_high=10, num_low=30, task_jps=30.0)
    summary = ClockworkServer().run_taskset(taskset, HORIZON)
    # One-DNN-at-a-time throughput is bounded by the single-stream rate, and
    # the excess demand is dropped up front rather than missed.
    assert summary["throughput_jps"] < 700.0
    assert summary["drop_rate"] > 0.3
    assert summary["deadline_miss_rate"] < 0.2


def test_rtgpu_has_no_priority_differentiation(resnet18):
    taskset = make_taskset([resnet18], num_high=6, num_low=12, task_jps=30.0)
    metrics = RtgpuScheduler(DarisConfig.mps_config(4, 4.0)).run_taskset(taskset, HORIZON, seed=2)
    assert metrics.total_jps > 0
    # Without prioritization both classes see similar treatment: HP is not
    # shielded, so its miss/rejection behaviour is no longer strictly better.
    hp_resp = metrics.high.response_time_stats()["mean"]
    lp_resp = metrics.low.response_time_stats()["mean"]
    assert hp_resp == pytest.approx(lp_resp, rel=0.5)
