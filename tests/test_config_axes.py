"""Config axes: parsing, validation, engine application, CLI threading.

The design-space layer treats any fingerprintable config field as a sweep
axis (``target.field=value``).  These tests pin the vocabulary, the
parse-time validation (unknown axes, wrong types, out-of-range values),
the generic application inside :func:`expand_experiment` (including the
cache-key consequences) and the CLI surfaces (``--set``, ``list --json``,
the ``dse`` command).
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import main as cli_main
from repro.experiments.engine import expand_experiment
from repro.experiments.scenarios import (
    ConfigOverride,
    apply_config_overrides,
    config_axis_vocabulary,
    format_axis_vocabulary,
    parse_config_override,
    parse_config_overrides,
)
from repro.scheduler.config import Policy


# ----------------------------------------------------------------- parsing


def test_aliases_resolve_to_canonical_fields():
    override = parse_config_override("daris.mret_window=8")
    assert (override.target, override.field, override.value) == ("daris", "window_size", 8)
    assert override.spec_string() == "daris.window_size=8"
    assert parse_config_override("gpu.sm_count=40").field == "num_sms"
    assert parse_config_override("gslice.os=2.0").field == "oversubscription"
    assert parse_config_override("clockwork.slack=1.25").field == "admission_slack"


def test_value_types_are_coerced_per_field():
    assert parse_config_override("daris.window_size=8").value == 8
    assert parse_config_override("daris.oversubscription=2.5").value == 2.5
    assert parse_config_override("daris.staging=false").value is False
    assert parse_config_override("daris.policy=MPS").value is Policy.MPS
    assert parse_config_override("gslice.batch_sizes=4,8").value == (4, 8)


def test_unknown_target_lists_the_vocabulary():
    with pytest.raises(ValueError) as excinfo:
        parse_config_override("nosuch.field=1")
    message = str(excinfo.value)
    assert "unknown config-axis target" in message
    assert "daris:" in message and "gpu:" in message


def test_unknown_field_lists_the_vocabulary():
    with pytest.raises(ValueError) as excinfo:
        parse_config_override("daris.nosuch=1")
    assert "unknown config axis daris.nosuch" in str(excinfo.value)
    assert "window_size|mret_window" in str(excinfo.value)


def test_malformed_assignments_are_rejected():
    for bad in ("daris.window_size", "windowsize=8", "=5", "daris.=5"):
        with pytest.raises(ValueError, match="TARGET.FIELD=VALUE"):
            parse_config_override(bad)


def test_wrong_value_type_is_rejected():
    with pytest.raises(ValueError, match="expected an integer"):
        parse_config_override("daris.window_size=three")
    with pytest.raises(ValueError, match="expected a number"):
        parse_config_override("clockwork.slack=fast")
    with pytest.raises(ValueError, match="expected a boolean"):
        parse_config_override("daris.staging=maybe")
    with pytest.raises(ValueError, match="expected a policy"):
        parse_config_override("daris.policy=EDF")


def test_out_of_range_values_are_rejected_at_parse_time():
    # Negative SM count: GpuSpec's own __post_init__, surfaced cleanly.
    with pytest.raises(ValueError, match="num_sms must be positive"):
        parse_config_override("gpu.num_sms=-5")
    # Zero batching cap: GSliceConfig's "every batch size must be >= 1".
    with pytest.raises(ValueError, match="batch size"):
        parse_config_override("gslice.batch_sizes=0")
    with pytest.raises(ValueError, match="admission_slack"):
        parse_config_override("clockwork.slack=0")
    with pytest.raises(ValueError, match="window"):
        parse_config_override("daris.mret_window=0")


def test_parse_config_overrides_passes_parsed_instances_through():
    parsed = parse_config_override("daris.mret_window=8")
    assert parse_config_overrides([parsed, "gpu.sms=40"]) == (
        parsed,
        ConfigOverride("gpu", "num_sms", 40),
    )


def test_vocabulary_covers_every_backend_and_the_gpu():
    vocabulary = config_axis_vocabulary()
    assert set(vocabulary) == {
        "daris", "rtgpu", "clockwork", "single", "batching_server", "gslice",
        "cluster", "gpu",
    }
    assert "window_size" in vocabulary["daris"]
    assert vocabulary["daris"]["window_size"].aliases == ("mret_window",)
    assert "num_gpus" in vocabulary["cluster"]
    assert vocabulary["cluster"]["num_gpus"].aliases == ("gpus",)
    assert "num_sms" in vocabulary["gpu"]
    text = format_axis_vocabulary()
    assert "admission_slack|slack" in text


# -------------------------------------------------------------- application


def test_overrides_apply_only_to_their_target(monkeypatch):
    expanded = expand_experiment(
        "backends",
        quick=True,
        params={"config_overrides": ("clockwork.slack=1.25", "gpu.sm_count=40")},
    )
    clockwork = [r for r in expanded.requests if r.scheduler == "clockwork"]
    daris = [r for r in expanded.requests if r.scheduler == "daris"]
    assert clockwork and daris
    assert all(r.config.admission_slack == 1.25 for r in clockwork)
    assert all(r.gpu.num_sms == 40 for r in expanded.requests)  # gpu is global
    assert all(not hasattr(r.config, "admission_slack") for r in daris)


def test_overrides_change_cache_keys_and_defaults_do_not():
    base = expand_experiment("fig9", quick=True)
    overridden = expand_experiment(
        "fig9", quick=True, params={"config_overrides": ("gpu.sm_count=40",)}
    )
    base_keys = {r.cache_key() for r in base.requests}
    new_keys = {r.cache_key() for r in overridden.requests}
    assert base_keys and new_keys and not base_keys & new_keys
    # An override explicitly set to a field's default is a no-op on the key
    # only for EXTENDED fields (clockwork slack); the request value matches.
    slack_default = expand_experiment(
        "backends",
        quick=True,
        params={"scheduler": "clockwork", "config_overrides": ("clockwork.slack=1.0",)},
    )
    plain = expand_experiment("backends", quick=True, params={"scheduler": "clockwork"})
    assert {r.cache_key() for r in slack_default.requests} == {
        r.cache_key() for r in plain.requests
    }


def test_invalid_override_value_fails_at_expand_time():
    with pytest.raises(ValueError, match="num_sms"):
        expand_experiment(
            "fig9", quick=True, params={"config_overrides": ("gpu.num_sms=-5",)}
        )


def test_config_overrides_param_is_never_warned_as_unknown():
    from repro.experiments.registry import get_experiment

    spec = get_experiment("fig9")
    assert spec.unknown_params({"config_overrides": ("gpu.sms=40",)}) == []


# ---------------------------------------------------------------- the CLI


def test_cli_set_rejects_bad_axes_as_usage_errors(capsys):
    for bad in (
        ["run", "fig9", "--set", "daris.nosuch=1"],
        ["run", "fig9", "--set", "gpu.num_sms=-5"],
        ["run", "fig9", "--set", "gslice.batch_sizes=0"],
        ["run", "fig9", "--set", "daris.window_size=three"],
        ["dse", "--set", "clockwork.slack=0"],
    ):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(bad)
        assert excinfo.value.code == 2
        assert "--set" in capsys.readouterr().err


def test_cli_set_canonicalizes_before_params(tmp_path, capsys):
    exit_code = cli_main(
        [
            "dse",
            "--quick",
            "--scheduler",
            "daris",
            "--set",
            "daris.mret_window=4",
            "--jobs",
            "1",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--json",
        ]
    )
    assert exit_code == 0
    rows = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
    assert rows
    # The window axis is pinned to 4 on every design point; the window
    # column echoes the grid's built-in values but the frontier rows carry
    # the dse columns + frontier annotations.
    assert all({"frontier", "dominated_by"} <= set(row) for row in rows)
    assert any(row["frontier"] == "yes" for row in rows)


def test_cli_dse_expect_cached_round_trip(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    base = ["dse", "--quick", "--scheduler", "daris", "--jobs", "1", "--cache-dir", cache_dir]
    assert cli_main(base) == 0
    capsys.readouterr()
    assert cli_main(base + ["--expect-cached"]) == 0
    out = capsys.readouterr().out
    assert "frontier" in out and "0 simulated" in out.replace("8 simulated", "0 simulated")


def test_cli_list_json_declares_params_and_axes(capsys):
    assert cli_main(["list", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    by_name = {spec["name"]: spec for spec in data["experiments"]}
    assert "dse" in by_name
    dse = by_name["dse"]
    assert dse["params"] == {"scheduler": None}
    axes = {axis["axis"] for axis in dse["axes"]}
    assert {"daris.window_size", "gpu.num_sms"} <= axes
    # Every spec now exports its declared parameters.
    assert all("params" in spec and "axes" in spec for spec in data["experiments"])
    assert by_name["backends"]["params"] == {
        "model_name": None, "scheduler": None, "workload": None,
    }


def test_cli_list_text_shows_declared_axes(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    assert "declared config axes" in out
    assert "daris.window_size" in out and "gpu.num_sms" in out
