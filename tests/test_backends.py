"""Tests for the pluggable scheduler-backend API.

Covers the backend registry and protocol (validation, dispatch), the
canonical backend configs (round-trips, kind dispatch), the WorkloadSpec
vocabulary, the backward-compatible request fingerprints, the typed baseline
results with their deprecation shims, and the migrated SOTA comparison
(engine rows numerically equivalent to direct legacy baseline calls).
"""

from __future__ import annotations

import json

import pytest

from repro.backends import backend_names, get_backend
from repro.backends.base import BackendRequestError
from repro.backends.configs import (
    BatchingConfig,
    ClockworkConfig,
    GSliceConfig,
    SingleConfig,
    config_from_dict,
)
from repro.baselines.batching_server import BatchingServer, saturated_batching_jps
from repro.baselines.clockwork import ClockworkServer
from repro.baselines.gslice import GSliceServer
from repro.baselines.rtgpu import RtgpuScheduler
from repro.baselines.single import SingleTenantExecutor
from repro.cluster.config import ClusterConfig
from repro.experiments.engine import run_cached_scenarios, run_experiment
from repro.experiments.parallel import ScenarioRequest
from repro.experiments.runner import ScenarioResult
from repro.experiments.sota_comparison import _resnet50_taskset
from repro.dnn.zoo import build_model
from repro.rt.taskset import mixed_taskset, table2_taskset
from repro.scheduler.config import DarisConfig
from repro.sim.workload import (
    PERIODIC_WORKLOAD,
    POISSON_WORKLOAD,
    SATURATED_WORKLOAD,
    WorkloadSpec,
)

HORIZON = 600.0
DARIS_CONFIG = DarisConfig.mps_config(2, 2.0)


def _taskset():
    return table2_taskset("resnet18", scale=0.25)


# ------------------------------------------------------------------- registry


def test_registry_lists_the_builtin_backends():
    assert backend_names() == [
        "daris",
        "batching_server",
        "clockwork",
        "gslice",
        "rtgpu",
        "single",
        "cluster",
    ]


def test_unknown_backend_raises_with_the_registered_list():
    with pytest.raises(KeyError) as excinfo:
        get_backend("tetris")
    message = str(excinfo.value)
    assert "tetris" in message and "daris" in message and "clockwork" in message


def test_backend_declarations_are_consistent():
    from repro.sim.workload import ARRIVAL_KINDS

    for name in backend_names():
        backend = get_backend(name)
        assert backend.name == name
        assert backend.title
        assert backend.supported_arrivals
        assert set(backend.supported_arrivals) <= set(ARRIVAL_KINDS)


# ------------------------------------------------------------------- workloads


def test_workload_spec_validation():
    with pytest.raises(ValueError):
        WorkloadSpec(arrival="sawtooth")  # unknown kind lists the vocabulary
    with pytest.raises(ValueError):
        WorkloadSpec(jitter_ms=-1.0)
    with pytest.raises(ValueError):
        WorkloadSpec(arrival="saturated", jitter_ms=2.0)  # not rate-driven
    with pytest.raises(ValueError):
        SATURATED_WORKLOAD.with_diurnal()  # not rate-driven
    with pytest.raises(ValueError):
        WorkloadSpec.trace([])  # a trace needs at least one release
    with pytest.raises(ValueError):
        WorkloadSpec.trace([3.0, 1.0])  # trace times must be sorted
    with pytest.raises(ValueError):
        WorkloadSpec.mmpp(rate_factors=(1.0,), dwell_ms=(10.0,))  # >= 2 phases
    with pytest.raises(ValueError):
        POISSON_WORKLOAD.with_diurnal(amplitude=1.5)  # amplitude in [0, 1)
    with pytest.raises(ValueError):
        POISSON_WORKLOAD.with_diurnal(shape="piecewise")  # levels required
    with pytest.raises(ValueError):
        POISSON_WORKLOAD.with_diurnal(levels=(1.0, 2.0))  # levels are piecewise-only
    # Jitter now composes with any rate-driven base, not just periodic.
    assert WorkloadSpec(arrival="poisson", jitter_ms=2.0).randomized
    assert WorkloadSpec().is_default
    assert not WorkloadSpec(jitter_ms=1.0).is_default
    assert SATURATED_WORKLOAD.saturated and not POISSON_WORKLOAD.saturated


def test_workload_spec_round_trips_and_labels():
    from repro.sim.workload import DIURNAL_WORKLOAD, MMPP_WORKLOAD

    for workload in (
        PERIODIC_WORKLOAD,
        POISSON_WORKLOAD,
        SATURATED_WORKLOAD,
        WorkloadSpec(jitter_ms=2.5),
        MMPP_WORKLOAD,
        DIURNAL_WORKLOAD,
        WorkloadSpec.mmpp(rate_factors=(0.1, 1.0, 4.0), dwell_ms=(300.0, 200.0, 50.0)),
        WorkloadSpec.trace([0.0, 4.5, 9.0]),
        POISSON_WORKLOAD.with_diurnal(shape="piecewise", levels=(0.25, 1.0, 2.75)),
        MMPP_WORKLOAD.with_jitter(1.5),
    ):
        restored = WorkloadSpec.from_dict(json.loads(json.dumps(workload.to_dict())))
        assert restored == workload
    assert WorkloadSpec(jitter_ms=2.5).label() == "periodic+j2.5"
    assert POISSON_WORKLOAD.label() == "poisson"
    assert MMPP_WORKLOAD.label() == "mmpp"
    assert DIURNAL_WORKLOAD.label() == "poisson+diurnal"
    assert MMPP_WORKLOAD.with_jitter(1.5).label() == "mmpp+j1.5"
    assert WorkloadSpec.trace([1.0]).label() == "trace"


def test_workload_from_dict_tolerates_missing_optional_keys():
    """Satellite: older serialized specs (and hand-written JSON grids) that
    predate a field keep loading — absent keys fall back to the defaults."""
    assert WorkloadSpec.from_dict({"arrival": "poisson"}) == POISSON_WORKLOAD
    assert WorkloadSpec.from_dict({}) == PERIODIC_WORKLOAD
    # A parameterized kind with its params key absent gets the default params.
    from repro.sim.workload import MMPP_WORKLOAD

    assert WorkloadSpec.from_dict({"arrival": "mmpp"}) == MMPP_WORKLOAD
    # Unknown arrival kinds still fail loudly, listing the vocabulary.
    with pytest.raises(ValueError, match="periodic"):
        WorkloadSpec.from_dict({"arrival": "sawtooth"})


def test_backend_config_from_dict_tolerates_missing_optional_keys():
    """The same forward-compatibility rule applies to backend configs."""
    assert BatchingConfig.from_dict({"kind": "batching_server"}) == BatchingConfig()
    assert config_from_dict({"kind": "batching_server", "batch_size": 4}) == BatchingConfig(
        batch_size=4
    )


def test_saturated_workload_has_no_arrival_process():
    with pytest.raises(ValueError):
        SATURATED_WORKLOAD.arrival_for_task(period_ms=10.0)


# ------------------------------------------------------------------- configs


def test_backend_configs_round_trip_with_kind_dispatch():
    configs = [
        ClockworkConfig(),
        SingleConfig(),
        BatchingConfig(batch_size=8, timeout_ms=5.0),
        BatchingConfig(),  # batch 0 = the model's preferred size
        GSliceConfig(batch_sizes=(8, 2)),
        GSliceConfig(),
    ]
    for config in configs:
        data = json.loads(json.dumps(config.to_dict()))
        assert data["kind"]
        restored = config_from_dict(data)
        assert restored == config and type(restored) is type(config)


def test_untagged_config_dictionaries_are_daris():
    restored = config_from_dict(DARIS_CONFIG.to_dict())
    assert restored == DARIS_CONFIG
    with pytest.raises(KeyError):
        config_from_dict({"kind": "tetris"})


def test_config_validation():
    with pytest.raises(ValueError):
        BatchingConfig(batch_size=-1)
    with pytest.raises(ValueError):
        BatchingConfig(batch_size=4, timeout_ms=0.0)
    with pytest.raises(ValueError):
        GSliceConfig(batch_sizes=(0,))


# --------------------------------------------------------- request validation


def test_backend_rejects_wrong_config_type():
    request = ScenarioRequest(
        _taskset(), ClockworkConfig(), HORIZON, scheduler="daris"
    )
    with pytest.raises(BackendRequestError):
        get_backend("daris").execute(request)


def test_backend_rejects_unsupported_workload():
    request = ScenarioRequest(
        _taskset(), DARIS_CONFIG, HORIZON, scheduler="daris", workload=SATURATED_WORKLOAD
    )
    with pytest.raises(BackendRequestError):
        get_backend("daris").execute(request)
    request = ScenarioRequest(
        _taskset(), SingleConfig(), HORIZON, scheduler="single", workload=POISSON_WORKLOAD
    )
    with pytest.raises(BackendRequestError):
        get_backend("single").execute(request)


def test_only_daris_records_traces():
    request = ScenarioRequest(
        _taskset(), ClockworkConfig(), HORIZON, scheduler="clockwork", with_trace=True
    )
    with pytest.raises(BackendRequestError):
        get_backend("clockwork").execute(request)


def test_single_model_backends_reject_mixed_tasksets():
    request = ScenarioRequest(
        mixed_taskset(scale=0.2),
        SingleConfig(),
        HORIZON,
        scheduler="single",
        workload=SATURATED_WORKLOAD,
    )
    with pytest.raises(BackendRequestError):
        get_backend("single").execute(request)


def test_gslice_serves_every_model_of_a_mixed_taskset():
    request = ScenarioRequest(
        mixed_taskset(scale=0.2),
        GSliceConfig(),
        HORIZON,
        scheduler="gslice",
        workload=SATURATED_WORKLOAD,
    )
    result = get_backend("gslice").execute(request)
    assert len(result.metrics.per_task_completed) == 3
    assert result.total_jps > 0


# ------------------------------------------------------ fingerprints / cache


def test_default_request_fingerprint_is_unchanged_by_the_backend_fields():
    """Backward compatibility: a plain DARIS request fingerprints exactly as
    it did before the scheduler/workload fields existed, so existing caches
    stay valid."""
    request = ScenarioRequest(_taskset(), DARIS_CONFIG, HORIZON, seed=3)
    fingerprint = request.fingerprint()
    assert "scheduler" not in fingerprint and "workload" not in fingerprint
    assert fingerprint == {
        "schema": 1,
        "taskset": request.taskset.fingerprint(),
        "config": DARIS_CONFIG.to_dict(),
        "horizon_ms": HORIZON,
        "seed": 3,
        "with_trace": False,
        "label": None,
        "gpu": request.gpu.to_dict(),
        "calibration": request.calibration.to_dict(),
    }


def test_non_default_scheduler_and_workload_change_the_cache_key():
    base = ScenarioRequest(_taskset(), DARIS_CONFIG, HORIZON, seed=3)
    rtgpu = ScenarioRequest(_taskset(), DARIS_CONFIG, HORIZON, seed=3, scheduler="rtgpu")
    poisson = ScenarioRequest(
        _taskset(), DARIS_CONFIG, HORIZON, seed=3, workload=POISSON_WORKLOAD
    )
    assert "scheduler" in rtgpu.fingerprint() and "workload" in poisson.fingerprint()
    assert len({base.cache_key(), rtgpu.cache_key(), poisson.cache_key()}) == 3


#: Acceptance pin: cache keys computed on the PR 4 flat-WorkloadSpec code for
#: every pre-hierarchy request shape.  The composable spec layer must keep
#: them byte-identical so no existing cache entry is invalidated.
PINNED_PR4_CACHE_KEYS = {
    "default_periodic": "d7f9a8c7ffc922264810ee3c58fbe5da9aff17841e71f5663f675cea64003bc7",
    "periodic_jitter": "6dbd3fa2edfe068cfa3d03a30102967c96faa86a035fc17a2322c38429c0f149",
    "poisson": "4a77aabd4e68275d60cd384a6602b8f0033bbabd04cf42cf3ba130d52dc1c202",
    "rtgpu_poisson": "d8f0e1b4af53db97634c85734b8b2ef9e8f4e216cc2b3d03340a1836b979c9f5",
    "single_saturated": "37ff5f2b8b511db38201b2aa033f1b3ebd6448754ff01e11b638157ef190f366",
    "batching_saturated": "f9622b4cf74e18b7d7f03da25c5044cae60b2301b4e99c902d4e4098c05526a3",
}


def test_pre_existing_request_cache_keys_are_pinned():
    taskset = _taskset()
    requests = {
        "default_periodic": ScenarioRequest(taskset, DARIS_CONFIG, HORIZON, seed=3),
        "periodic_jitter": ScenarioRequest(
            taskset, DARIS_CONFIG, HORIZON, seed=3, workload=WorkloadSpec(jitter_ms=2.5)
        ),
        "poisson": ScenarioRequest(
            taskset, DARIS_CONFIG, HORIZON, seed=3, workload=POISSON_WORKLOAD
        ),
        "rtgpu_poisson": ScenarioRequest(
            taskset, DARIS_CONFIG, HORIZON, seed=3, scheduler="rtgpu", workload=POISSON_WORKLOAD
        ),
        "single_saturated": ScenarioRequest(
            taskset,
            SingleConfig(),
            HORIZON,
            seed=3,
            scheduler="single",
            workload=SATURATED_WORKLOAD,
        ),
        "batching_saturated": ScenarioRequest(
            taskset,
            BatchingConfig(batch_size=8),
            HORIZON,
            seed=3,
            scheduler="batching_server",
            workload=SATURATED_WORKLOAD,
        ),
    }
    assert {name: request.cache_key() for name, request in requests.items()} == (
        PINNED_PR4_CACHE_KEYS
    )


def test_flat_workload_fingerprints_are_byte_identical_to_pr4():
    """The serialized shape itself (not just the hash) matches the flat spec."""
    assert PERIODIC_WORKLOAD.to_dict() == {"arrival": "periodic", "jitter_ms": 0.0}
    assert POISSON_WORKLOAD.to_dict() == {"arrival": "poisson", "jitter_ms": 0.0}
    assert SATURATED_WORKLOAD.to_dict() == {"arrival": "saturated", "jitter_ms": 0.0}
    assert WorkloadSpec(jitter_ms=2.5).to_dict() == {
        "arrival": "periodic",
        "jitter_ms": 2.5,
    }


def test_new_workload_kinds_produce_distinct_round_trippable_fingerprints():
    from repro.sim.workload import DIURNAL_WORKLOAD, MMPP_WORKLOAD

    taskset = _taskset()
    specs = [
        MMPP_WORKLOAD,
        WorkloadSpec.mmpp(rate_factors=(0.1, 5.0), dwell_ms=(100.0, 100.0)),
        MMPP_WORKLOAD.with_jitter(1.0),
        DIURNAL_WORKLOAD,
        POISSON_WORKLOAD.with_diurnal(shape="piecewise", levels=(0.5, 1.5)),
        WorkloadSpec.trace([0.0, 10.0, 20.0]),
        WorkloadSpec.trace([0.0, 10.0, 21.0]),
    ]
    keys = set()
    for workload in specs:
        request = ScenarioRequest(taskset, DARIS_CONFIG, HORIZON, seed=3, workload=workload)
        assert "workload" in request.fingerprint()
        keys.add(request.cache_key())
        restored = WorkloadSpec.from_dict(
            json.loads(json.dumps(request.fingerprint()["workload"]))
        )
        assert restored == workload
    assert len(keys) == len(specs)  # every new shape is its own cache entry


def test_baseline_results_round_trip_through_the_cache_format():
    for scheduler, config, workload in (
        ("clockwork", ClockworkConfig(), PERIODIC_WORKLOAD),
        ("gslice", GSliceConfig(batch_sizes=(4,)), SATURATED_WORKLOAD),
        ("batching_server", BatchingConfig(batch_size=4), POISSON_WORKLOAD),
    ):
        request = ScenarioRequest(
            _taskset(), config, HORIZON, seed=2, scheduler=scheduler, workload=workload
        )
        result = get_backend(scheduler).execute(request)
        restored = ScenarioResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored == result  # config, label and metrics, float-exact


def _grid_config_for(backend_name: str):
    return {
        "daris": DARIS_CONFIG,
        "rtgpu": DARIS_CONFIG,
        "clockwork": ClockworkConfig(),
        "batching_server": BatchingConfig(batch_size=4),
        "single": SingleConfig(),
        "gslice": GSliceConfig(),
        "cluster": ClusterConfig(),
    }[backend_name]


def test_new_workload_kinds_run_deterministically_on_every_backend():
    """Acceptance: mmpp, trace and diurnal workloads run bit-identically for
    a fixed seed on every registered backend that supports their base kind."""
    from repro.sim.workload import DIURNAL_WORKLOAD, MMPP_WORKLOAD

    taskset = _taskset()
    workloads = (MMPP_WORKLOAD, DIURNAL_WORKLOAD, WorkloadSpec.trace(
        [7.5 * index for index in range(40)]
    ))
    covered = 0
    for name in backend_names():
        backend = get_backend(name)
        for workload in workloads:
            if workload.arrival not in backend.supported_arrivals:
                continue
            request = ScenarioRequest(
                taskset,
                _grid_config_for(name),
                HORIZON,
                seed=5,
                scheduler=name,
                workload=workload,
            )
            first = backend.execute(request)
            second = backend.execute(request)
            assert first.metrics == second.metrics, (name, workload.label())
            covered += 1
    # daris/rtgpu/clockwork/batching_server/cluster each cover all three kinds.
    assert covered == 15


# ------------------------------------------------------- typed baseline shims


def test_clockwork_typed_result_and_deprecated_mapping(resnet18):
    taskset = table2_taskset("resnet18", model=resnet18, scale=0.25)
    outcome = ClockworkServer().run_taskset(taskset, HORIZON)
    assert outcome.throughput_jps == outcome.metrics.total_jps
    assert 0.0 <= outcome.drop_rate <= 1.0
    with pytest.warns(DeprecationWarning):
        legacy = outcome["throughput_jps"]
    assert legacy == outcome.throughput_jps
    with pytest.warns(DeprecationWarning):
        assert set(outcome.keys()) == {
            "throughput_jps", "drop_rate", "deadline_miss_rate", "mean_response_ms"
        }


def test_gslice_typed_result_and_deprecated_mapping(resnet18):
    outcome = GSliceServer([resnet18], batch_sizes=[4]).run_saturated(HORIZON)
    assert outcome.total_jps == pytest.approx(outcome.per_model_jps["resnet18"])
    with pytest.warns(DeprecationWarning):
        assert outcome["total"] == outcome.total_jps


def test_single_tenant_run_is_still_a_float_with_metrics(resnet18):
    outcome = SingleTenantExecutor(resnet18).run(HORIZON)
    assert isinstance(outcome, float)
    assert outcome == outcome.metrics.total_jps
    assert outcome.metrics.low.completed == int(round(outcome * HORIZON / 1000.0))
    assert len(outcome.metrics.low.response_times) == outcome.metrics.low.completed


def test_jps_result_survives_pickle_and_deepcopy(resnet18):
    """Regression: the bare float these methods used to return pickled and
    deep-copied fine; the metrics-carrying subclass must too."""
    import copy
    import pickle

    outcome = SingleTenantExecutor(resnet18).run(HORIZON)
    for clone in (pickle.loads(pickle.dumps(outcome)), copy.deepcopy(outcome)):
        assert float(clone) == float(outcome)
        assert clone.metrics == outcome.metrics


def test_legacy_mapping_shim_covers_the_full_dict_surface(resnet18):
    taskset = table2_taskset("resnet18", model=resnet18, scale=0.25)
    outcome = ClockworkServer().run_taskset(taskset, HORIZON)
    with pytest.warns(DeprecationWarning):
        assert len(outcome) == 4
    with pytest.warns(DeprecationWarning):
        assert list(outcome.values()) == [
            outcome.throughput_jps,
            outcome.drop_rate,
            outcome.deadline_miss_rate,
            outcome.mean_response_ms,
        ]
    with pytest.warns(DeprecationWarning):
        assert dict(outcome) == outcome.legacy_mapping()
    with pytest.warns(DeprecationWarning):
        assert outcome.get("nope", 0.0) == 0.0


def test_batching_arrivals_typed_result_and_deprecated_mapping(resnet18):
    server = BatchingServer(resnet18, batch_size=8)
    outcome = server.run_with_arrivals(
        arrival_rate_jps=100.0, deadline_ms=20.0, horizon_ms=HORIZON
    )
    assert outcome.completed == outcome.metrics.total_completed
    with pytest.warns(DeprecationWarning):
        assert outcome["deadline_miss_rate"] == outcome.deadline_miss_rate


# ------------------------------------------------------------ sota / the grid


def test_sota_engine_rows_match_legacy_direct_baseline_calls():
    """Acceptance: the migrated sota spec produces the same numbers the
    pre-backend implementation computed by calling each baseline's bespoke
    entry point directly (same seeds, float-exact)."""
    model = build_model("resnet50")
    taskset = _resnet50_taskset(model)
    seed = 1

    requests = [
        ScenarioRequest(
            taskset,
            BatchingConfig(batch_size=16),
            HORIZON,
            seed=seed,
            scheduler="batching_server",
            workload=SATURATED_WORKLOAD,
        ),
        ScenarioRequest(
            taskset,
            GSliceConfig(batch_sizes=(16,)),
            HORIZON,
            seed=seed,
            scheduler="gslice",
            workload=SATURATED_WORKLOAD,
        ),
        ScenarioRequest(
            taskset, ClockworkConfig(), HORIZON, seed=seed, scheduler="clockwork"
        ),
        ScenarioRequest(
            taskset,
            DarisConfig.mps_config(6, 6.0),
            HORIZON,
            seed=seed,
            scheduler="rtgpu",
        ),
    ]
    batching, gslice, clockwork, rtgpu = run_cached_scenarios(requests, processes=1)

    assert batching.total_jps == float(
        saturated_batching_jps(model, batch_size=16, horizon_ms=HORIZON)
    )
    assert gslice.total_jps == GSliceServer([model], batch_sizes=[16]).run_saturated(
        HORIZON
    ).total_jps
    legacy_clockwork = ClockworkServer().run_taskset(taskset, HORIZON)
    assert clockwork.total_jps == legacy_clockwork.throughput_jps
    legacy_rtgpu = RtgpuScheduler(DarisConfig.mps_config(6, 6.0)).run_taskset(
        taskset, HORIZON, seed=seed
    )
    assert rtgpu.metrics == legacy_rtgpu


def test_backend_grid_spec_expands_and_filters(tmp_path):
    from repro.experiments.engine import expand_experiment

    full = expand_experiment("backends", quick=True)
    grid_backends = {request.scheduler for request in full.requests}
    # The cluster backend has its own dedicated grid (the ``cluster``
    # experiment); the single-GPU backend grid covers everything else.
    assert grid_backends == set(backend_names()) - {"cluster"}
    assert {request.workload.arrival for request in full.requests} == {
        "saturated",
        "poisson",
        "mmpp",
    }
    assert {request.workload.label() for request in full.requests} == {
        "saturated",
        "poisson",
        "mmpp",
        "poisson+diurnal",
    }

    filtered = expand_experiment(
        "backends", quick=True, params={"scheduler": "clockwork"}
    )
    assert filtered.requests
    assert {request.scheduler for request in filtered.requests} == {"clockwork"}

    bursty = expand_experiment("backends", quick=True, params={"workload": "bursty"})
    assert bursty.requests
    assert {request.workload.arrival for request in bursty.requests} == {"mmpp"}
    diurnal = expand_experiment("backends", quick=True, params={"workload": "diurnal"})
    assert {request.workload.label() for request in diurnal.requests} == {
        "poisson+diurnal"
    }
    with pytest.raises(KeyError):
        expand_experiment("backends", quick=True, params={"workload": "sawtooth"})

    report = run_experiment(
        "backends",
        quick=True,
        processes=1,
        cache=str(tmp_path / "cache"),
        params={"scheduler": "single", "model_name": "resnet18"},
    )
    assert [row["backend"] for row in report.rows] == ["single"]
    assert report.rows[0]["model"] == "resnet18"
    assert report.simulated == 1
    again = run_experiment(
        "backends",
        quick=True,
        processes=1,
        cache=str(tmp_path / "cache"),
        params={"scheduler": "single", "model_name": "resnet18"},
    )
    assert again.simulated == 0 and again.cache_hits == 1
    assert again.rows == report.rows

    with pytest.raises(KeyError):
        expand_experiment("backends", quick=True, params={"scheduler": "tetris"})


def test_seed_insensitive_replicates_share_one_request_and_simulation(tmp_path):
    """Deterministic servers replicated across --seeds keep their base seed
    (value-identical requests, one cache entry) and simulate exactly once,
    while seed-sensitive backends still get one shifted request per seed."""
    from repro.experiments.engine import expand_experiment
    from repro.experiments.registry import ExperimentPlan, ExperimentSpec

    taskset = _taskset()

    def build(ctx):
        requests = [
            ScenarioRequest(taskset, DARIS_CONFIG, HORIZON, seed=ctx.seed),
            ScenarioRequest(
                taskset, ClockworkConfig(), HORIZON, seed=ctx.seed, scheduler="clockwork"
            ),
            ScenarioRequest(
                taskset,
                ClockworkConfig(),
                HORIZON,
                seed=ctx.seed,
                scheduler="clockwork",
                workload=POISSON_WORKLOAD,  # rng-driven: stays seed-sensitive
            ),
        ]
        return ExperimentPlan(
            requests=requests,
            make_rows=lambda row_ctx: [
                {"jps": round(result.total_jps, 1)} for result in row_ctx.results
            ],
        )

    spec = ExperimentSpec(name="seedprobe", title="seed probe", build=build)
    expanded = expand_experiment(spec, quick=True, seeds=3)
    daris_seeds = {request.seed for request in expanded.requests if request.scheduler == "daris"}
    clockwork_periodic = [
        request
        for request in expanded.requests
        if request.scheduler == "clockwork" and request.workload.arrival == "periodic"
    ]
    clockwork_poisson_seeds = {
        request.seed
        for request in expanded.requests
        if request.scheduler == "clockwork" and request.workload.arrival == "poisson"
    }
    assert daris_seeds == {1, 2, 3}
    assert clockwork_poisson_seeds == {1, 2, 3}
    assert len(set(clockwork_periodic)) == 1  # value-identical across replicates

    report = run_experiment(spec, quick=True, seeds=3, processes=1, cache=str(tmp_path / "c"))
    # 3 daris + 3 poisson-clockwork + 1 shared periodic-clockwork simulation
    assert report.simulated == 7
    assert len(report.rows_by_seed) == 3 and all(len(rows) == 3 for rows in report.rows_by_seed)
    again = run_experiment(spec, quick=True, seeds=3, processes=1, cache=str(tmp_path / "c"))
    assert again.simulated == 0 and again.cache_hits == 9
    assert again.rows == report.rows


#: Acceptance pin (PR 8): default-config cache keys for every backend,
#: computed on the PR 7 code before the config-axis fields existed.  New
#: tunables (Clockwork's admission_slack, GSlice's oversubscription) follow
#: the EXTENDED_FIELDS only-when-non-default rule, so these keys must stay
#: byte-identical — no pre-existing cache entry is ever invalidated.
PINNED_PR7_DEFAULT_CONFIG_KEYS = {
    "daris": "df7c3e31e7f4fafd9213c76169d5b49533007c1e12b03e972a3e8350228e861f",
    "rtgpu": "d07ffb43db5a14203ea17e87b9640209ba8076afe46ff0f47457cb276a14013e",
    "clockwork": "28df04d8cac290175ee5f646d17a541c31c9458847a2ce7c0010522fb2c2a44d",
    "single": "b7288065ae118fca859b186f1f1ff5bdd8bd1dc8f38705bbab6ad5b55f36f521",
    "batching_server": "e67f1aae47bc3c2d4e6876ee3a8be6480e4b86e94e3cfc069db0b755648cb861",
    "gslice": "8cfc3abcedb25e2240e7674a1edc1cd54ea47f5e3860b5e76595e0e68485edb0",
}

#: PR 9 pin: the cluster backend's default-config key on the same pin
#: scenario.  ClusterConfig is a new kind with no EXTENDED_FIELDS, so every
#: field always serializes; this key must only change with a deliberate
#: config-shape change.
PINNED_PR9_CLUSTER_DEFAULT_KEY = (
    "9b731342b2af134259060392fa29aab20ff70045c9c199c474cf031d33d16568"
)


def test_default_config_cache_keys_for_every_backend_are_pinned_to_pr7():
    from repro.rt.taskset import make_taskset

    model = build_model("resnet18")
    taskset = make_taskset([model], num_high=1, num_low=2, task_jps=20.0, name="pin")
    horizon = 400.0
    daris_config = DarisConfig.mps_config(2, 2.0)
    requests = {
        "daris": ScenarioRequest(taskset, daris_config, horizon, seed=3),
        "rtgpu": ScenarioRequest(
            taskset, daris_config, horizon, seed=3, scheduler="rtgpu",
            workload=POISSON_WORKLOAD,
        ),
        "clockwork": ScenarioRequest(
            taskset, ClockworkConfig(), horizon, seed=3, scheduler="clockwork",
            workload=POISSON_WORKLOAD,
        ),
        "single": ScenarioRequest(
            taskset, SingleConfig(), horizon, seed=3, scheduler="single",
            workload=SATURATED_WORKLOAD,
        ),
        "batching_server": ScenarioRequest(
            taskset, BatchingConfig(), horizon, seed=3, scheduler="batching_server",
            workload=SATURATED_WORKLOAD,
        ),
        "gslice": ScenarioRequest(
            taskset, GSliceConfig(), horizon, seed=3, scheduler="gslice",
            workload=SATURATED_WORKLOAD,
        ),
    }
    assert {name: request.cache_key() for name, request in requests.items()} == (
        PINNED_PR7_DEFAULT_CONFIG_KEYS
    )
    cluster = ScenarioRequest(
        taskset, ClusterConfig(), horizon, seed=3, scheduler="cluster",
        workload=POISSON_WORKLOAD,
    )
    assert cluster.cache_key() == PINNED_PR9_CLUSTER_DEFAULT_KEY


def test_extended_config_fields_serialize_only_when_non_default():
    # Default values leave the fingerprint exactly as it was before the
    # field existed; non-default values must show up (distinct cache keys).
    assert ClockworkConfig().to_dict() == {"kind": "clockwork"}
    assert ClockworkConfig(admission_slack=1.25).to_dict() == {
        "kind": "clockwork",
        "admission_slack": 1.25,
    }
    assert GSliceConfig().to_dict() == {"kind": "gslice", "batch_sizes": None}
    assert GSliceConfig(oversubscription=2.0).to_dict() == {
        "kind": "gslice",
        "batch_sizes": None,
        "oversubscription": 2.0,
    }


def test_extended_config_fields_are_range_checked():
    with pytest.raises(ValueError):
        ClockworkConfig(admission_slack=0.0)
    with pytest.raises(ValueError):
        GSliceConfig(oversubscription=0.5)


def test_clockwork_admission_slack_changes_admission_behavior():
    taskset = _taskset()
    strict = ScenarioRequest(
        taskset, ClockworkConfig(admission_slack=5.0), HORIZON, seed=3,
        scheduler="clockwork", workload=POISSON_WORKLOAD,
    )
    default = ScenarioRequest(
        taskset, ClockworkConfig(), HORIZON, seed=3,
        scheduler="clockwork", workload=POISSON_WORKLOAD,
    )
    strict_result, default_result = run_cached_scenarios([strict, default])
    strict_rejected = (
        strict_result.metrics.high.rejected + strict_result.metrics.low.rejected
    )
    default_rejected = (
        default_result.metrics.high.rejected + default_result.metrics.low.rejected
    )
    # A 5x-inflated latency prediction must shed at least as aggressively.
    assert strict_rejected >= default_rejected
    strict_completed = (
        strict_result.metrics.high.completed + strict_result.metrics.low.completed
    )
    default_completed = (
        default_result.metrics.high.completed + default_result.metrics.low.completed
    )
    assert strict_completed <= default_completed


def test_gslice_oversubscription_beyond_partition_count_is_a_request_error():
    request = ScenarioRequest(
        _taskset(), GSliceConfig(oversubscription=4.0), HORIZON, seed=3,
        scheduler="gslice", workload=SATURATED_WORKLOAD,
    )
    with pytest.raises(BackendRequestError, match="oversubscription"):
        get_backend("gslice").execute(request)
