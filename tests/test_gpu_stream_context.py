"""Tests for the stream FIFO and context bookkeeping."""

import pytest

from repro.gpu.context import Context
from repro.gpu.kernel import KernelInstance, KernelSpec, KernelState
from repro.gpu.stream import Stream


def _instance(name="k"):
    return KernelInstance(
        spec=KernelSpec(name=name, work=1.0, parallelism=1.0), stream_id=0, context_id=0
    )


def test_stream_push_reports_head_transition():
    stream = Stream(stream_id=0, context_id=0)
    assert stream.push(_instance("a")) is True
    assert stream.push(_instance("b")) is False
    assert stream.depth == 2


def test_stream_pop_head_fifo_order():
    stream = Stream(stream_id=0, context_id=0)
    first, second = _instance("a"), _instance("b")
    stream.push(first)
    stream.push(second)
    assert stream.pop_head() is first
    assert stream.head is second


def test_stream_pop_empty_raises():
    with pytest.raises(RuntimeError):
        Stream(stream_id=0, context_id=0).pop_head()


def test_stream_idle_state():
    stream = Stream(stream_id=0, context_id=0)
    assert stream.is_idle
    stream.push(_instance())
    assert not stream.is_idle


def test_context_requires_positive_quota():
    with pytest.raises(ValueError):
        Context(context_id=0, sm_quota=0)


def test_context_creates_streams_with_unique_ids():
    context = Context(context_id=0, sm_quota=34)
    streams = [context.create_stream() for _ in range(3)]
    assert [s.stream_id for s in streams] == [0, 1, 2]
    assert context.stream(1) is streams[1]
    with pytest.raises(KeyError):
        context.stream(99)


def test_context_busy_and_idle_stream_accounting():
    context = Context(context_id=0, sm_quota=34)
    s0, s1 = context.create_stream(), context.create_stream()
    s0.push(_instance())
    assert context.busy_stream_count() == 1
    assert context.idle_streams() == [s1]
    assert context.queue_depth() == 1


def test_context_running_kernels_only_counts_running_heads():
    context = Context(context_id=0, sm_quota=34)
    stream = context.create_stream()
    head, queued = _instance("head"), _instance("queued")
    stream.push(head)
    stream.push(queued)
    assert context.running_kernels() == []
    head.state = KernelState.RUNNING
    assert context.running_kernels() == [head]


def test_context_snapshot_contents():
    context = Context(context_id=3, sm_quota=12)
    context.create_stream()
    snapshot = context.snapshot()
    assert snapshot["context_id"] == 3
    assert snapshot["sm_quota"] == 12
    assert snapshot["streams"] == 1
