"""Tests for the SM water-filling allocation."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.gpu.allocation import allocate_sms, water_fill, water_fill_array


def _bits(values):
    """IEEE-754 bit patterns — ``==`` would conflate 0.0 and -0.0."""
    return [struct.pack("<d", value) for value in values]


def test_water_fill_satisfies_small_demands_fully():
    assert water_fill(10.0, [2.0, 3.0]) == [2.0, 3.0]


def test_water_fill_splits_capacity_fairly_when_oversubscribed():
    allocations = water_fill(10.0, [8.0, 8.0])
    assert allocations == [5.0, 5.0]


def test_water_fill_redistributes_surplus_from_small_demands():
    allocations = water_fill(12.0, [2.0, 20.0, 20.0])
    assert allocations[0] == pytest.approx(2.0)
    assert allocations[1] == pytest.approx(5.0)
    assert allocations[2] == pytest.approx(5.0)


def test_water_fill_empty_and_zero_capacity():
    assert water_fill(5.0, []) == []
    assert water_fill(0.0, [1.0, 2.0]) == [0.0, 0.0]


def test_water_fill_negative_capacity_rejected():
    with pytest.raises(ValueError):
        water_fill(-1.0, [1.0])


@given(
    capacity=st.floats(min_value=0.0, max_value=200.0),
    demands=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=0, max_size=12),
)
def test_property_water_fill_conservation_and_caps(capacity, demands):
    allocations = water_fill(capacity, demands)
    assert len(allocations) == len(demands)
    for allocation, demand in zip(allocations, demands):
        assert allocation <= demand + 1e-9
        assert allocation >= 0.0
    assert sum(allocations) <= capacity + 1e-6
    assert sum(allocations) <= sum(demands) + 1e-6
    # Work-conserving: either capacity or every demand is exhausted.
    if demands:
        assert (
            sum(allocations) >= min(capacity, sum(demands)) - 1e-6
        )


def test_water_fill_array_matches_reference_on_basic_cases():
    cases = [
        (10.0, [2.0, 3.0]),
        (10.0, [8.0, 8.0]),
        (12.0, [2.0, 20.0, 20.0]),
        (5.0, []),
        (0.0, [1.0, 2.0]),
        (7.0, [0.0, 0.0, 0.0]),
        (68.0, [0.1] * 40 + [30.0, 30.0]),
    ]
    for capacity, demands in cases:
        assert _bits(water_fill_array(capacity, demands)) == _bits(water_fill(capacity, demands))


def test_water_fill_array_negative_capacity_rejected():
    with pytest.raises(ValueError):
        water_fill_array(-1.0, [1.0])


def test_water_fill_array_returns_plain_floats():
    allocations = water_fill_array(10.0, [8.0, 8.0])
    assert all(type(value) is float for value in allocations)


@given(
    capacity=st.floats(min_value=0.0, max_value=200.0),
    demands=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=0, max_size=64),
)
def test_property_water_fill_array_bit_identical_to_reference(capacity, demands):
    assert _bits(water_fill_array(capacity, demands)) == _bits(water_fill(capacity, demands))


@given(
    capacity=st.floats(min_value=1e-12, max_value=1e6),
    demands=st.lists(
        st.one_of(
            st.just(0.0),
            st.floats(min_value=1e-9, max_value=1e-3),
            st.floats(min_value=0.5, max_value=128.0),
            st.floats(min_value=1e3, max_value=1e6),
        ),
        min_size=1,
        max_size=48,
    ),
)
def test_property_water_fill_array_bit_identical_mixed_magnitudes(capacity, demands):
    # Mixed tiny/huge demands drive many redistribution rounds, the regime
    # where an order-of-operations divergence between the two implementations
    # would actually surface.
    assert _bits(water_fill_array(capacity, demands)) == _bits(water_fill(capacity, demands))


def test_allocate_sms_single_kernel_gets_its_parallelism():
    result = allocate_sms(68, {0: 68.0}, {0: [(1, 40.0)]})
    assert result.kernel_sms[1] == pytest.approx(40.0)
    assert result.pressure == pytest.approx(1.0)
    assert result.utilization == pytest.approx(40.0 / 68.0)


def test_allocate_sms_respects_context_quota():
    result = allocate_sms(68, {0: 12.0}, {0: [(1, 40.0)]})
    assert result.kernel_sms[1] == pytest.approx(12.0)


def test_allocate_sms_scales_down_when_oversubscribed():
    running = {0: [(1, 68.0)], 1: [(2, 68.0)], 2: [(3, 68.0)]}
    quotas = {0: 68.0, 1: 68.0, 2: 68.0}
    result = allocate_sms(68, quotas, running)
    total = sum(result.kernel_sms.values())
    assert total == pytest.approx(68.0)
    assert result.pressure == pytest.approx(3.0)


def test_allocate_sms_idle_context_sms_flow_to_oversubscribed_context():
    # Context 0 idles; context 1 (oversubscribed quota) can use the whole GPU.
    result = allocate_sms(68, {0: 68.0, 1: 68.0}, {1: [(5, 60.0)]})
    assert result.kernel_sms[5] == pytest.approx(60.0)


def test_allocate_sms_isolated_quotas_do_not_expand():
    # With OS=1 quotas, a single busy context cannot exceed its own quota even
    # though the rest of the GPU is idle -- the core cost of SM isolation.
    result = allocate_sms(68, {0: 12.0, 1: 12.0}, {0: [(1, 60.0)]})
    assert result.kernel_sms[1] == pytest.approx(12.0)
    assert result.utilization < 0.2


def test_allocate_sms_reports_context_concurrency():
    running = {0: [(1, 10.0), (2, 10.0)], 1: [(3, 10.0)]}
    result = allocate_sms(68, {0: 30.0, 1: 30.0}, running)
    assert result.context_concurrency[0] == 2
    assert result.context_concurrency[1] == 1


@given(
    data=st.data(),
    num_sms=st.integers(min_value=4, max_value=128),
)
def test_property_allocation_never_exceeds_device_or_quota(data, num_sms):
    num_contexts = data.draw(st.integers(min_value=1, max_value=6))
    quotas = {
        cid: float(data.draw(st.integers(min_value=2, max_value=num_sms)))
        for cid in range(num_contexts)
    }
    running = {}
    uid = 0
    for cid in range(num_contexts):
        kernels = []
        for _ in range(data.draw(st.integers(min_value=0, max_value=4))):
            kernels.append((uid, data.draw(st.floats(min_value=0.5, max_value=128.0))))
            uid += 1
        running[cid] = kernels
    result = allocate_sms(num_sms, quotas, running)
    assert sum(result.kernel_sms.values()) <= num_sms + 1e-6
    per_context = {}
    for cid, kernels in running.items():
        per_context[cid] = sum(result.kernel_sms.get(k, 0.0) for k, _ in kernels)
        assert per_context[cid] <= quotas[cid] + 1e-6
    assert 0.0 <= result.utilization <= 1.0 + 1e-9
