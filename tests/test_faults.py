"""Tests for the fault-injection subsystem and its resilience plumbing.

Covers the :class:`FaultSpec` vocabulary (validation, round-trips, labels),
the :class:`FaultInjector` determinism contract (same seed + spec =>
bit-identical results, twice, on every backend), the cause-breakdown
accounting invariants, fingerprint/cache-key compatibility (fault-free
requests keep their pre-fault keys byte-identical), the ``faults``
experiment grid, and the crash-robustness satellites: cache-entry
quarantine and the parallel fan-out's pool-crash retry.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.backends import get_backend
from repro.backends.configs import BatchingConfig, ClockworkConfig, GSliceConfig, SingleConfig
from repro.baselines.batching_server import BatchingServer
from repro.baselines.single import SingleTenantExecutor
from repro.dnn.zoo import build_model
from repro.experiments.cache import ResultCache
from repro.experiments.engine import run_cached_scenarios
from repro.experiments.parallel import ScenarioRequest, _run_request, run_scenarios_parallel
from repro.experiments.scenarios import NAMED_FAULTS, fault_names, named_fault
from repro.rt.metrics import FaultImpact
from repro.rt.taskset import table2_taskset
from repro.scheduler.config import DarisConfig
from repro.sim.faults import (
    DEFAULT_POLICY,
    NO_FAULTS,
    CrashFault,
    FaultInjector,
    FaultSpec,
    LaunchFault,
    RequestFaults,
    ResiliencePolicy,
    SlowdownFault,
)
from repro.sim.rng import RngFactory
from repro.sim.workload import PERIODIC_WORKLOAD, POISSON_WORKLOAD, SATURATED_WORKLOAD

HORIZON = 600.0
DARIS_CONFIG = DarisConfig.mps_config(2, 2.0)

STORM = (
    FaultSpec.throttle(period_ms=300.0, duration_ms=60.0, factor=0.5)
    .with_launch(LaunchFault(failure_prob=0.08, retry_cost_ms=1.0))
    .with_crash(CrashFault(mtbf_ms=900.0, recovery_ms=25.0))
    .with_requests(RequestFaults(drop_prob=0.05, timeout_ms=250.0))
)


def _taskset():
    return table2_taskset("resnet18", scale=0.25)


# ----------------------------------------------------------------- FaultSpec


def test_fault_spec_defaults_and_labels():
    assert NO_FAULTS.is_default and not NO_FAULTS.active and not NO_FAULTS.randomized
    assert NO_FAULTS.label() == "none"
    assert STORM.active and STORM.randomized
    assert STORM.label() == "slowdown+launch+crash+requests"
    throttle = FaultSpec.throttle()
    assert throttle.label() == "slowdown" and not throttle.randomized


def test_fault_spec_round_trips_through_dict_and_fingerprint():
    for spec in (NO_FAULTS, STORM, *NAMED_FAULTS.values()):
        rebuilt = FaultSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.fingerprint() == spec.fingerprint()
    # Distinct specs fingerprint distinctly.
    prints = {json.dumps(spec.fingerprint(), sort_keys=True) for spec in NAMED_FAULTS.values()}
    assert len(prints) == len(NAMED_FAULTS)


def test_fault_component_validation():
    with pytest.raises(ValueError):
        SlowdownFault(period_ms=100.0, duration_ms=50.0, factor=0.0)
    with pytest.raises(ValueError):
        SlowdownFault(period_ms=-1.0, duration_ms=50.0, factor=0.5)
    with pytest.raises(ValueError):
        LaunchFault(failure_prob=1.5)
    with pytest.raises(ValueError):
        CrashFault(mtbf_ms=0.0)
    with pytest.raises(ValueError):
        RequestFaults(drop_prob=-0.1)


def test_randomized_spec_requires_an_rng():
    with pytest.raises(ValueError):
        FaultInjector(STORM, rng=None, policy=DEFAULT_POLICY)
    # Deterministic specs need no RNG at all.
    FaultInjector(FaultSpec.throttle(), rng=None, policy=DEFAULT_POLICY)


def test_named_fault_vocabulary():
    assert fault_names() == ["none", "throttle", "flaky-launch", "crashy", "lossy", "storm"]
    assert named_fault("none") is NO_FAULTS
    with pytest.raises(KeyError):
        named_fault("meteor-strike")


# --------------------------------------------------------------- fingerprints


def test_fault_free_fingerprint_and_cache_key_are_unchanged():
    """The acceptance pin: a request without faults fingerprints exactly as
    before the faults field existed, so every pre-existing cache key is
    byte-identical (the full pinned-hash set lives in test_backends.py)."""
    bare = ScenarioRequest(_taskset(), DARIS_CONFIG, HORIZON, seed=3)
    explicit = ScenarioRequest(_taskset(), DARIS_CONFIG, HORIZON, seed=3, faults=NO_FAULTS)
    assert "faults" not in bare.fingerprint()
    assert bare.cache_key() == explicit.cache_key()


def test_non_default_faults_change_the_cache_key():
    base = ScenarioRequest(_taskset(), DARIS_CONFIG, HORIZON, seed=3)
    faulted = ScenarioRequest(_taskset(), DARIS_CONFIG, HORIZON, seed=3, faults=STORM)
    assert faulted.fingerprint()["faults"] == STORM.fingerprint()
    assert base.cache_key() != faulted.cache_key()
    # Different profiles key differently too.
    lossy = ScenarioRequest(
        _taskset(), DARIS_CONFIG, HORIZON, seed=3, faults=named_fault("lossy")
    )
    assert len({base.cache_key(), faulted.cache_key(), lossy.cache_key()}) == 3


def test_randomized_faults_make_deterministic_backends_seed_sensitive():
    clockwork = get_backend("clockwork")
    assert not clockwork.seed_sensitive(PERIODIC_WORKLOAD)
    assert clockwork.seed_sensitive(PERIODIC_WORKLOAD, faults=STORM)
    # A deterministic fault profile adds no seed sensitivity.
    assert not clockwork.seed_sensitive(PERIODIC_WORKLOAD, faults=FaultSpec.throttle())


# ---------------------------------------------------------------- determinism


def _faulted_requests():
    taskset = _taskset()
    return [
        ScenarioRequest(taskset, DARIS_CONFIG, HORIZON, seed=7, faults=STORM),
        ScenarioRequest(
            taskset, DARIS_CONFIG, HORIZON, seed=7, scheduler="rtgpu",
            workload=POISSON_WORKLOAD, faults=STORM,
        ),
        ScenarioRequest(
            taskset, ClockworkConfig(), HORIZON, seed=7, scheduler="clockwork",
            workload=POISSON_WORKLOAD, faults=STORM,
        ),
        ScenarioRequest(
            taskset, SingleConfig(), HORIZON, seed=7, scheduler="single",
            workload=SATURATED_WORKLOAD, faults=STORM,
        ),
        ScenarioRequest(
            taskset, BatchingConfig(batch_size=8), HORIZON, seed=7,
            scheduler="batching_server", workload=POISSON_WORKLOAD, faults=STORM,
        ),
        ScenarioRequest(
            taskset, GSliceConfig(batch_sizes=(8,)), HORIZON, seed=7,
            scheduler="gslice", workload=SATURATED_WORKLOAD, faults=STORM,
        ),
    ]


def test_same_seed_and_fault_spec_is_bit_identical_twice_on_every_backend():
    for request in _faulted_requests():
        first = _run_request(request).metrics.to_dict()
        second = _run_request(request).metrics.to_dict()
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True), (
            request.scheduler
        )


def test_faulted_metrics_round_trip_through_the_cache_format(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    for request in _faulted_requests():
        result = _run_request(request)
        assert cache.put(request, result)
        cached = cache.get(request)
        assert cached is not None
        assert cached.metrics == result.metrics


# ----------------------------------------------------------------- accounting


def test_cause_breakdown_counts_sum_to_released_jobs():
    """On the DARIS-machinery backends every released request is accounted
    for exactly once: admitted + rejected + dropped == released, and the
    admitted split into on-time/missed/timed-out/failed/in-flight."""
    taskset = _taskset()
    for scheduler in ("daris", "rtgpu"):
        request = ScenarioRequest(
            taskset, DARIS_CONFIG, HORIZON, seed=7, scheduler=scheduler, faults=STORM
        )
        metrics = _run_request(request).metrics
        for bucket in (metrics.high, metrics.low):
            assert bucket.admitted + bucket.rejected + bucket.dropped == bucket.released
            assert bucket.shed <= bucket.rejected
            in_flight = bucket.admitted - bucket.completed - bucket.timed_out - bucket.failed
            assert in_flight >= 0
            assert (
                bucket.on_time + bucket.missed + bucket.timed_out + bucket.failed + in_flight
                == bucket.admitted
            )
        causes = metrics.cause_breakdown()
        released = metrics.high.released + metrics.low.released
        in_flight = causes["in_flight"]
        assert (
            causes["on_time"] + causes["missed"] + causes["timed_out"] + causes["failed"]
            + causes["dropped"] + causes["rejected"] + in_flight
            == released
        )


def test_fault_free_metrics_serialize_without_fault_keys():
    request = ScenarioRequest(_taskset(), DARIS_CONFIG, HORIZON, seed=7)
    payload = _run_request(request).metrics.to_dict()
    assert "fault_impact" not in payload
    for bucket in ("high", "low"):
        for key in ("dropped", "shed", "timed_out", "failed", "launch_retries"):
            assert key not in payload[bucket]


def test_throttle_and_crashes_slow_the_single_executor_down():
    model = build_model("resnet18")
    clean = SingleTenantExecutor(model).run(HORIZON)
    throttled = SingleTenantExecutor(model).run(HORIZON, faults=FaultSpec.throttle())
    crashy = SingleTenantExecutor(model).run(
        HORIZON,
        faults=FaultSpec.crashes(mtbf_ms=200.0, recovery_ms=20.0),
        rng=RngFactory(7),
    )
    assert throttled.jps < clean.jps
    assert crashy.jps < clean.jps
    impact = throttled.metrics.fault_impact
    assert impact is not None and impact.episodes > 0 and impact.downtime_ms > 0
    assert clean.metrics.fault_impact is None


def test_client_timeouts_purge_stale_batching_queues():
    model = build_model("resnet18")
    server = BatchingServer(model, batch_size=32)
    outcome = server.run_with_arrivals(
        arrival_rate_jps=100.0,
        deadline_ms=50.0,
        horizon_ms=HORIZON,
        faults=FaultSpec.lossy(drop_prob=0.0, timeout_ms=5.0),
    )
    low = outcome.metrics.low
    assert low.timed_out > 0
    assert low.admitted == low.released  # drop_prob 0: everything admitted
    assert low.completed + low.timed_out <= low.admitted


def test_fault_impact_from_summary_handles_absent_telemetry():
    assert FaultImpact.from_summary(None) is None
    impact = FaultImpact.from_summary(
        {"episodes": 2, "downtime_ms": 120.0, "time_to_recover_ms": 3.5}
    )
    assert impact.episodes == 2 and impact.downtime_ms == 120.0
    assert FaultImpact.from_dict(impact.to_dict()) == impact


# ---------------------------------------------------------------- faults grid


def test_faults_grid_expands_runs_and_filters(tmp_path):
    from repro.experiments.faults_grid import run as run_faults_grid

    rows = run_faults_grid(
        quick=True,
        processes=1,
        cache=str(tmp_path / "cache"),
        scheduler="daris",
        fault="lossy",
    )
    assert len(rows) == 1
    row = rows[0]
    assert row["backend"] == "daris" and row["fault"] == "lossy"
    for key in ("jps", "goodput_jps", "on_time", "missed", "dropped", "shed",
                "timed_out", "failed", "retries", "episodes", "ttr_ms"):
        assert key in row
    assert row["dropped"] > 0  # the lossy profile actually drops requests

    with pytest.raises(KeyError):
        run_faults_grid(quick=True, processes=1, fault="meteor-strike")
    with pytest.raises(KeyError):
        run_faults_grid(quick=True, processes=1, scheduler="nosuch")


# ------------------------------------------------------- quarantine satellite


def test_corrupt_cache_entries_are_quarantined_and_rewritten(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    request = ScenarioRequest(_taskset(), DARIS_CONFIG, HORIZON, seed=5)
    result = _run_request(request)
    assert cache.put(request, result)
    key = cache.key_for(request)
    path = cache.path_for(key)

    # Truncated JSON (a torn write) is a miss, quarantined aside.
    path.write_text(path.read_text(encoding="utf-8")[:40], encoding="utf-8")
    assert cache.get(request) is None
    quarantined = path.with_suffix(path.suffix + ".corrupt")
    assert quarantined.is_file() and not path.exists()
    # Quarantined files are invisible to key iteration and entry counting.
    assert key not in set(cache.iter_keys())
    assert len(cache) == 0

    # Re-simulating rewrites a clean entry under the same key; the
    # quarantined bytes stay for post-mortem.
    assert cache.put(request, result)
    restored = cache.get(request)
    assert restored is not None and restored.metrics == result.metrics
    assert quarantined.is_file()


def test_unrebuildable_payloads_are_quarantined_too(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    request = ScenarioRequest(_taskset(), DARIS_CONFIG, HORIZON, seed=5)
    assert cache.put(request, _run_request(request))
    key = cache.key_for(request)
    path = cache.path_for(key)
    entry = json.loads(path.read_text(encoding="utf-8"))
    entry["result"] = {"label": "x"}  # valid JSON, not a rebuildable result
    path.write_text(json.dumps(entry), encoding="utf-8")
    assert cache.get(request) is None
    assert path.with_suffix(path.suffix + ".corrupt").is_file()
    assert not path.exists()


def test_missing_entries_are_plain_misses_without_quarantine(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    request = ScenarioRequest(_taskset(), DARIS_CONFIG, HORIZON, seed=5)
    assert cache.get(request) is None
    assert cache.misses == 1
    assert not list((tmp_path / "cache").glob("**/*.corrupt"))


def test_engine_resimulates_over_a_corrupted_entry(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    request = ScenarioRequest(_taskset(), DARIS_CONFIG, HORIZON, seed=5)
    [first] = run_cached_scenarios([request], processes=1, cache=cache)
    path = cache.path_for(cache.key_for(request))
    path.write_text("{ not json", encoding="utf-8")
    [second] = run_cached_scenarios([request], processes=1, cache=cache)
    assert second.metrics == first.metrics
    # The entry was rewritten clean: a third pass is a pure hit.
    hits_before = cache.hits
    [third] = run_cached_scenarios([request], processes=1, cache=cache)
    assert cache.hits == hits_before + 1
    assert third.metrics == first.metrics


# ------------------------------------------------------- pool-crash satellite


class _CrashOncePool:
    """Fake multiprocessing pool: dies once mid-stream, then works."""

    crashed = False

    def __init__(self, processes):
        self.processes = processes

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def imap(self, fn, batch, chunksize=1):
        for index, item in enumerate(batch):
            if not _CrashOncePool.crashed and index == 1:
                _CrashOncePool.crashed = True
                raise EOFError("worker process died")
            yield fn(item)

    def imap_unordered(self, fn, batch, chunksize=1):
        return self.imap(fn, batch, chunksize)


class _AlwaysCrashPool(_CrashOncePool):
    def imap(self, fn, batch, chunksize=1):
        raise EOFError("worker process died")
        yield  # pragma: no cover


class _FakeContext:
    def __init__(self, pool_type):
        self.pool_type = pool_type

    def Pool(self, processes):
        return self.pool_type(processes)


def test_pool_crash_retries_undelivered_scenarios_once(monkeypatch):
    _CrashOncePool.crashed = False
    monkeypatch.setattr(
        multiprocessing, "get_context", lambda: _FakeContext(_CrashOncePool)
    )
    taskset = _taskset()
    requests = [
        ScenarioRequest(taskset, DARIS_CONFIG, HORIZON, seed=seed) for seed in (1, 2, 3)
    ]
    seen = []
    results = run_scenarios_parallel(
        requests, processes=2, on_result=lambda index, result: seen.append(index)
    )
    assert all(result is not None for result in results)
    assert sorted(seen) == [0, 1, 2]  # each scenario delivered exactly once
    serial = [_run_request(request) for request in requests]
    for parallel_result, serial_result in zip(results, serial):
        assert parallel_result.metrics == serial_result.metrics  # retry is bit-identical


def test_second_pool_crash_propagates(monkeypatch):
    monkeypatch.setattr(
        multiprocessing, "get_context", lambda: _FakeContext(_AlwaysCrashPool)
    )
    taskset = _taskset()
    requests = [
        ScenarioRequest(taskset, DARIS_CONFIG, HORIZON, seed=seed) for seed in (1, 2)
    ]
    with pytest.raises(EOFError):
        run_scenarios_parallel(requests, processes=2)
