"""Tests for kernel specifications and runtime instances."""

import pytest

from repro.gpu.kernel import KernelInstance, KernelSpec, KernelState


def test_kernel_spec_isolated_duration():
    spec = KernelSpec(name="k", work=40.0, parallelism=20.0)
    assert spec.isolated_duration_ms == pytest.approx(2.0)


def test_kernel_spec_validation():
    with pytest.raises(ValueError):
        KernelSpec(name="k", work=-1.0, parallelism=10.0)
    with pytest.raises(ValueError):
        KernelSpec(name="k", work=1.0, parallelism=0.0)
    with pytest.raises(ValueError):
        KernelSpec(name="k", work=1.0, parallelism=1.0, num_launches=0)
    with pytest.raises(ValueError):
        KernelSpec(name="k", work=1.0, parallelism=1.0, memory_intensity=1.5)


def test_kernel_spec_scaled_caps_parallelism():
    spec = KernelSpec(name="k", work=10.0, parallelism=30.0)
    scaled = spec.scaled(work_scale=4.0, parallelism_scale=4.0, max_parallelism=68.0)
    assert scaled.work == pytest.approx(40.0)
    assert scaled.parallelism == pytest.approx(68.0)
    assert scaled.num_launches == spec.num_launches


def test_kernel_instance_lifecycle_fields():
    spec = KernelSpec(name="k", work=10.0, parallelism=5.0)
    instance = KernelInstance(spec=spec, stream_id=0, context_id=0)
    assert instance.state is KernelState.QUEUED
    instance.start_time = 1.0
    instance.finish_time = 3.0
    instance.enqueue_time = 0.5
    assert instance.execution_time_ms == pytest.approx(2.0)
    assert instance.service_time_ms == pytest.approx(2.5)


def test_kernel_instance_uids_are_unique():
    spec = KernelSpec(name="k", work=1.0, parallelism=1.0)
    uids = {KernelInstance(spec=spec, stream_id=0, context_id=0).uid for _ in range(100)}
    assert len(uids) == 100
