"""Tests for model calibration, staging and the model zoo."""

import pytest

from repro.dnn.layer import conv2d, linear
from repro.dnn.model import calibrate_model, launch_gap_ms
from repro.dnn.profiles import DnnProfile, get_profile
from repro.dnn.stage import build_stages
from repro.dnn.zoo import available_models, build_model


def test_zoo_lists_all_paper_networks():
    assert available_models() == ["inceptionv3", "resnet18", "resnet50", "unet"]


def test_unknown_model_raises():
    with pytest.raises(KeyError):
        build_model("mobilenet")


def test_every_model_has_four_stages(all_models):
    for model in all_models.values():
        assert model.num_stages == 4


def test_isolated_latency_matches_table1(all_models):
    for name, model in all_models.items():
        expected = 1000.0 / get_profile(name).single_stream_jps
        assert model.isolated_latency_ms() == pytest.approx(expected, rel=0.01), name


def test_mean_parallelism_reflects_occupancy_split(all_models):
    # During kernel execution the occupancy is higher than the end-to-end
    # occupancy fraction (gaps excluded), and never exceeds the GPU width.
    for name, model in all_models.items():
        profile = get_profile(name)
        assert model.mean_parallelism() >= profile.occupancy_fraction * 68 - 1e-6, name
        assert model.mean_parallelism() <= 68.0 + 1e-6, name


def test_total_work_pins_colocation_roofline(all_models):
    for name, model in all_models.items():
        profile = get_profile(name)
        roofline = 68000.0 / model.total_work
        assert roofline == pytest.approx(profile.colocation_roofline_jps(), rel=0.01), name


def test_unet_is_widest_and_inception_narrowest(all_models):
    assert all_models["unet"].mean_parallelism() > all_models["resnet18"].mean_parallelism()
    assert all_models["resnet18"].mean_parallelism() > all_models["inceptionv3"].mean_parallelism()


def test_inceptionv3_has_most_kernels(all_models):
    assert all_models["inceptionv3"].total_kernels > all_models["resnet18"].total_kernels


def test_stage_work_fractions_sum_to_one(all_models):
    for model in all_models.values():
        assert sum(model.stage_work_fractions()) == pytest.approx(1.0)


def test_merged_model_preserves_work_and_kernels(resnet18):
    merged = resnet18.merged()
    assert merged.num_stages == 1
    assert merged.total_work == pytest.approx(resnet18.total_work)
    assert merged.total_kernels == resnet18.total_kernels
    assert merged.stages[0].parallelism <= 68.0


def test_launch_gap_helper_matches_model_accessor(resnet18):
    expected = launch_gap_ms(resnet18.total_kernels, resnet18.num_stages, resnet18.gpu)
    assert resnet18.launch_gap_ms() == pytest.approx(expected)


def test_build_stages_validates_boundaries():
    layers = [conv2d("a", 3, 8, 32), conv2d("b", 8, 8, 32), linear("c", 8, 10)]
    stages = build_stages("tiny", layers, [2, 3])
    assert [len(stage) for stage in stages] == [2, 1]
    with pytest.raises(ValueError):
        build_stages("tiny", layers, [3, 2])
    with pytest.raises(ValueError):
        build_stages("tiny", layers, [2])
    with pytest.raises(ValueError):
        build_stages("tiny", layers, [])
    with pytest.raises(ValueError):
        build_stages("tiny", layers, [0, 3])


def test_calibrate_model_rejects_wrong_stage_count():
    profile = get_profile("resnet18")
    with pytest.raises(ValueError):
        calibrate_model("bad", profile, [[conv2d("a", 3, 8, 32)]])


def test_calibrate_custom_model_hits_its_profile():
    profile = DnnProfile(
        name="toy",
        single_stream_jps=1000.0,
        batched_max_jps=1500.0,
        occupancy_fraction=0.5,
        batch_saturation_scale=2.0,
        memory_intensity=0.3,
        num_stages=2,
        preferred_batch_size=4,
    )
    stage_a = [conv2d("a", 3, 32, 64), conv2d("b", 32, 32, 64)]
    stage_b = [conv2d("c", 32, 64, 32), linear("fc", 64, 10)]
    model = calibrate_model("toy", profile, [stage_a, stage_b])
    assert model.isolated_latency_ms() == pytest.approx(1.0, rel=0.01)
    assert model.total_work == pytest.approx(0.5 * 68 * 1.0, rel=0.01)


def test_stage_to_kernel_spec_round_trip(resnet18):
    stage = resnet18.stages[0]
    spec = stage.to_kernel_spec()
    assert spec.work == pytest.approx(stage.work)
    assert spec.parallelism == pytest.approx(stage.parallelism)
    assert spec.num_launches == stage.num_kernels


def test_stage_isolated_duration_respects_available_sms(resnet18):
    stage = resnet18.stages[0]
    assert stage.isolated_duration_ms(10.0) > stage.isolated_duration_ms(68.0)
