"""Tests for the offline phase (Algorithm 1, AFET seeding) and the admission controller."""

import pytest

from repro.rt.task import Priority, Task, TaskSpec
from repro.scheduler.admission import AdmissionController
from repro.scheduler.config import DarisConfig
from repro.scheduler.offline import initialize_timing, populate_contexts


def _tasks(model, num_high, num_low, period=33.33):
    tasks = []
    for index in range(num_high + num_low):
        priority = Priority.HIGH if index < num_high else Priority.LOW
        task = Task(TaskSpec(task_id=index, model=model, period_ms=period, priority=priority))
        task.timing.set_afet([1.0] * task.num_stages)
        tasks.append(task)
    return tasks


def test_populate_contexts_assigns_every_task(resnet18):
    tasks = _tasks(resnet18, 6, 12)
    pool = populate_contexts(tasks, num_contexts=6)
    assert all(task.context_index in range(6) for task in tasks)
    assert set(pool) == set(range(6))


def test_populate_contexts_balances_utilization(resnet18):
    tasks = _tasks(resnet18, 6, 12)
    pool = populate_contexts(tasks, num_contexts=3)
    values = list(pool.values())
    assert max(values) - min(values) <= max(task.utilization() for task in tasks) + 1e-9
    # HP tasks are spread evenly too (Algorithm 1 places them first).
    hp_per_context = [
        sum(1 for t in tasks if t.priority is Priority.HIGH and t.context_index == c)
        for c in range(3)
    ]
    assert max(hp_per_context) - min(hp_per_context) <= 1


def test_populate_contexts_single_context(resnet18):
    tasks = _tasks(resnet18, 2, 2)
    pool = populate_contexts(tasks, num_contexts=1)
    assert all(task.context_index == 0 for task in tasks)
    assert pool[0] == pytest.approx(sum(task.utilization() for task in tasks))
    with pytest.raises(ValueError):
        populate_contexts(tasks, num_contexts=0)


def test_initialize_timing_analytic_seeds_every_stage(resnet18):
    tasks = _tasks(resnet18, 1, 2)
    for task in tasks:
        task.timing = type(task.timing)(num_stages=task.num_stages)  # reset
    config = DarisConfig.mps_config(4, 4.0)
    initialize_timing(tasks, config)
    for task in tasks:
        assert task.mret_total() > 0
        assert all(value > 0 for value in task.timing.stage_values())


def test_initialize_timing_profile_mode(resnet18):
    tasks = _tasks(resnet18, 1, 1)
    for task in tasks:
        task.timing = type(task.timing)(num_stages=task.num_stages)
    config = DarisConfig.mps_config(2, 2.0, afet_mode="profile")
    initialize_timing(tasks, config)
    assert all(task.mret_total() > 0 for task in tasks)


def _controller(model, num_contexts=2, streams=1, num_high=2, num_low=4, period=33.33):
    config = DarisConfig.mps_config(num_contexts, float(num_contexts)) if streams == 1 else (
        DarisConfig.mps_str_config(num_contexts, streams, float(num_contexts))
    )
    tasks = _tasks(model, num_high, num_low, period=period)
    populate_contexts(tasks, num_contexts)
    return AdmissionController(config, tasks), tasks


def test_admission_exempts_hp_tasks_by_default(resnet18):
    controller, tasks = _controller(resnet18)
    hp_task = next(task for task in tasks if task.priority is Priority.HIGH)
    job = hp_task.release_job(0.0)
    decision = controller.decide(job, predicted_finish=lambda ctx: 0.0)
    assert decision.admitted and decision.reason == "exempt"


def test_admission_accepts_lp_job_with_spare_capacity(resnet18):
    controller, tasks = _controller(resnet18)
    lp_task = next(task for task in tasks if task.priority is Priority.LOW)
    job = lp_task.release_job(0.0)
    decision = controller.decide(job, predicted_finish=lambda ctx: 0.0)
    assert decision.admitted
    controller.register_admission(job, decision.context_index)
    assert controller.active_low_utilization(decision.context_index) > 0
    controller.register_completion(job, decision.context_index)
    assert controller.active_low_utilization(decision.context_index) == pytest.approx(0.0)


def test_admission_rejects_when_every_context_is_saturated(resnet18):
    # Tiny periods make each task's utilization close to 1, so the second LP
    # job in a context cannot fit and no migration candidate passes either.
    controller, tasks = _controller(resnet18, num_contexts=2, num_high=0, num_low=6, period=4.5)
    admitted = 0
    rejected = 0
    for task in (t for t in tasks if t.priority is Priority.LOW):
        job = task.release_job(0.0)
        decision = controller.decide(job, predicted_finish=lambda ctx: 0.0)
        if decision.admitted:
            controller.register_admission(job, decision.context_index)
            admitted += 1
        else:
            rejected += 1
    assert admitted >= 1
    assert rejected >= 1


def test_admission_migrates_to_least_loaded_context(resnet18):
    controller, tasks = _controller(resnet18, num_contexts=2, num_high=0, num_low=4, period=8.0)
    lp_tasks = [task for task in tasks if task.priority is Priority.LOW]
    home = lp_tasks[0].context_index
    # Fill the home context with active jobs until it fails the test.
    for task in lp_tasks:
        if task.context_index != home:
            continue
        job = task.release_job(0.0)
        controller.register_admission(job, home)
    candidate = next(task for task in lp_tasks if task.context_index == home)
    job = candidate.release_job(1.0)
    decision = controller.decide(job, predicted_finish=lambda ctx: float(ctx == home) * 100.0)
    assert decision.admitted
    assert decision.context_index != home
    assert decision.migrated


def test_deadline_infeasible_job_is_rejected(resnet18):
    controller, tasks = _controller(resnet18)
    lp_task = next(task for task in tasks if task.priority is Priority.LOW)
    job = lp_task.release_job(0.0)
    # Every context predicts a finish far beyond the absolute deadline.
    decision = controller.decide(job, predicted_finish=lambda ctx: job.absolute_deadline + 100.0)
    assert not decision.admitted


def test_hp_admission_mode_tests_hp_jobs(resnet18):
    config = DarisConfig.mps_config(2, 2.0, hp_admission=True)
    tasks = _tasks(resnet18, 4, 0, period=4.5)
    populate_contexts(tasks, 2)
    controller = AdmissionController(config, tasks)
    decisions = []
    for task in tasks:
        job = task.release_job(0.0)
        decision = controller.decide(job, predicted_finish=lambda ctx: 0.0)
        if decision.admitted:
            controller.register_admission(job, decision.context_index)
        decisions.append(decision.admitted)
    assert any(decisions) and not all(decisions)
