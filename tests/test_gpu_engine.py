"""Tests for the event-driven GPU engine."""

import numpy as np
import pytest

from repro.gpu.calibration import GpuCalibration
from repro.gpu.engine import GpuEngine
from repro.gpu.kernel import KernelSpec, KernelState
from repro.gpu.spec import GpuSpec
from repro.sim.simulator import Simulator

NO_OVERHEAD_GPU = GpuSpec(name="ideal", num_sms=68, launch_overhead_ms=0.0)
NO_OVERHEAD_CAL = GpuCalibration(
    intra_stream_penalty=0.0,
    contention_penalty=0.0,
    noise_sigma_base=0.0,
    noise_sigma_intra=0.0,
    noise_sigma_contention=0.0,
    dispatch_overhead_ms=0.0,
)


def _engine(gpu=NO_OVERHEAD_GPU, calibration=NO_OVERHEAD_CAL, noise_rng=None):
    simulator = Simulator()
    engine = GpuEngine(simulator, gpu, calibration, noise_rng=noise_rng)
    return simulator, engine


def test_single_kernel_runs_for_work_over_parallelism():
    simulator, engine = _engine()
    context = engine.create_context(68)
    stream = engine.create_stream(context)
    done = []
    engine.launch(stream, KernelSpec("k", work=34.0, parallelism=34.0), done.append)
    simulator.run_until(10.0)
    assert len(done) == 1
    assert done[0].finish_time == pytest.approx(1.0, abs=1e-6)
    assert done[0].state is KernelState.COMPLETED


def test_kernels_in_one_stream_serialize():
    simulator, engine = _engine()
    context = engine.create_context(68)
    stream = engine.create_stream(context)
    finished = []
    for name in ("a", "b"):
        engine.launch(stream, KernelSpec(name, work=68.0, parallelism=68.0), finished.append)
    simulator.run_until(10.0)
    assert [k.spec.name for k in finished] == ["a", "b"]
    assert finished[0].finish_time == pytest.approx(1.0, abs=1e-6)
    assert finished[1].finish_time == pytest.approx(2.0, abs=1e-6)


def test_two_streams_in_one_context_share_the_quota():
    simulator, engine = _engine()
    context = engine.create_context(40)
    streams = [engine.create_stream(context) for _ in range(2)]
    finished = []
    for stream in streams:
        engine.launch(stream, KernelSpec("k", work=40.0, parallelism=40.0), finished.append)
    simulator.run_until(10.0)
    # Each kernel gets 20 SMs -> 2 ms each, finishing together.
    assert all(k.finish_time == pytest.approx(2.0, abs=1e-6) for k in finished)


def test_two_isolated_contexts_run_independently():
    simulator, engine = _engine()
    finished = []
    for _ in range(2):
        context = engine.create_context(34)
        stream = engine.create_stream(context)
        engine.launch(stream, KernelSpec("k", work=34.0, parallelism=34.0), finished.append)
    simulator.run_until(10.0)
    assert all(k.finish_time == pytest.approx(1.0, abs=1e-6) for k in finished)


def test_oversubscribed_contexts_scale_down_proportionally():
    simulator, engine = _engine()
    finished = []
    for _ in range(2):
        context = engine.create_context(68)
        stream = engine.create_stream(context)
        engine.launch(stream, KernelSpec("k", work=68.0, parallelism=68.0), finished.append)
    simulator.run_until(10.0)
    # Both kernels demand the whole GPU; each gets half -> 2 ms.
    assert all(k.finish_time == pytest.approx(2.0, abs=1e-6) for k in finished)


def test_narrow_kernel_cannot_use_more_than_its_parallelism():
    simulator, engine = _engine()
    context = engine.create_context(68)
    stream = engine.create_stream(context)
    done = []
    engine.launch(stream, KernelSpec("narrow", work=10.0, parallelism=5.0), done.append)
    simulator.run_until(10.0)
    assert done[0].finish_time == pytest.approx(2.0, abs=1e-6)


def test_launch_overhead_is_charged_before_execution():
    gpu = GpuSpec(name="overhead", num_sms=68, launch_overhead_ms=0.1)
    simulator, engine = _engine(gpu=gpu)
    context = engine.create_context(68)
    stream = engine.create_stream(context)
    done = []
    engine.launch(
        stream, KernelSpec("k", work=68.0, parallelism=68.0, num_launches=5), done.append
    )
    simulator.run_until(10.0)
    assert done[0].finish_time == pytest.approx(1.5, abs=1e-6)  # 5 * 0.1 + 1.0


def test_dispatcher_serializes_launches_within_a_context():
    gpu = GpuSpec(name="overhead", num_sms=68, launch_overhead_ms=0.2)
    simulator, engine = _engine(gpu=gpu)
    context = engine.create_context(68)
    streams = [engine.create_stream(context) for _ in range(2)]
    started = []
    for stream in streams:
        engine.launch(
            stream,
            KernelSpec("k", work=6.8, parallelism=68.0, num_launches=1),
            lambda k: started.append(k.start_time),
        )
    simulator.run_until(10.0)
    assert sorted(started) == pytest.approx([0.2, 0.4], abs=1e-6)


def test_intra_context_penalty_slows_co_resident_streams():
    calibration = GpuCalibration(
        intra_stream_penalty=0.5,
        contention_penalty=0.0,
        noise_sigma_base=0.0,
        noise_sigma_intra=0.0,
        noise_sigma_contention=0.0,
        dispatch_overhead_ms=0.0,
    )
    simulator, engine = _engine(calibration=calibration)
    context = engine.create_context(68)
    streams = [engine.create_stream(context) for _ in range(2)]
    finished = []
    for stream in streams:
        engine.launch(stream, KernelSpec("k", work=34.0, parallelism=34.0), finished.append)
    simulator.run_until(20.0)
    # Two co-resident kernels: efficiency 1 / 1.5, so 1 ms becomes 1.5 ms.
    assert all(k.finish_time == pytest.approx(1.5, abs=1e-6) for k in finished)


def test_noise_rng_produces_unit_mean_variation():
    calibration = GpuCalibration(noise_sigma_base=0.2, dispatch_overhead_ms=0.0)
    gpu = GpuSpec(name="noisy", num_sms=68, launch_overhead_ms=0.0)
    durations = []
    for seed in range(30):
        simulator, engine = _engine(
            gpu=gpu, calibration=calibration, noise_rng=np.random.default_rng(seed)
        )
        context = engine.create_context(68)
        stream = engine.create_stream(context)
        done = []
        engine.launch(stream, KernelSpec("k", work=68.0, parallelism=68.0), done.append)
        simulator.run_until(10.0)
        durations.append(done[0].finish_time)
    assert len(set(durations)) > 1
    assert 0.8 <= float(np.mean(durations)) <= 1.2


def test_engine_is_idle_after_all_work_completes():
    simulator, engine = _engine()
    context = engine.create_context(68)
    stream = engine.create_stream(context)
    engine.launch(stream, KernelSpec("k", work=6.8, parallelism=68.0))
    assert not engine.is_idle()
    simulator.run_until(10.0)
    assert engine.is_idle()
    assert engine.completed_kernels == 1


def test_completion_callback_can_launch_follow_up_work():
    simulator, engine = _engine()
    context = engine.create_context(68)
    stream = engine.create_stream(context)
    finish_times = []

    def chain(kernel):
        finish_times.append(kernel.finish_time)
        if len(finish_times) < 3:
            engine.launch(stream, KernelSpec("next", work=68.0, parallelism=68.0), chain)

    engine.launch(stream, KernelSpec("first", work=68.0, parallelism=68.0), chain)
    simulator.run_until(10.0)
    assert finish_times == pytest.approx([1.0, 2.0, 3.0], abs=1e-6)


def test_busy_time_tracks_active_periods():
    simulator, engine = _engine()
    context = engine.create_context(68)
    stream = engine.create_stream(context)
    engine.launch(stream, KernelSpec("k", work=68.0, parallelism=68.0))
    simulator.run_until(5.0)
    assert engine.busy_time() == pytest.approx(1.0, abs=1e-6)
