"""Tests for deterministic named RNG streams."""

from hypothesis import given, strategies as st

from repro.sim.rng import RngFactory


def test_same_seed_same_stream_reproduces_draws():
    a = RngFactory(seed=7).stream("noise")
    b = RngFactory(seed=7).stream("noise")
    assert list(a.random(10)) == list(b.random(10))


def test_different_streams_are_independent():
    factory = RngFactory(seed=7)
    first = list(factory.stream("noise").random(5))
    second = list(factory.stream("jitter").random(5))
    assert first != second


def test_different_seeds_differ():
    a = RngFactory(seed=1).stream("noise")
    b = RngFactory(seed=2).stream("noise")
    assert list(a.random(5)) != list(b.random(5))


def test_stream_is_cached_and_stateful():
    factory = RngFactory(seed=3)
    first = factory.stream("x").random()
    second = factory.stream("x").random()
    assert first != second  # same generator advancing, not recreated


def test_spawn_creates_independent_factory():
    parent = RngFactory(seed=5)
    child = parent.spawn("worker")
    assert child.seed != parent.seed
    assert list(child.stream("noise").random(3)) != list(parent.stream("noise").random(3))


def test_seed_property_round_trip():
    assert RngFactory(seed=123).seed == 123


@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
def test_property_streams_are_reproducible(seed, name):
    draws_a = list(RngFactory(seed).stream(name).integers(0, 1000, size=5))
    draws_b = list(RngFactory(seed).stream(name).integers(0, 1000, size=5))
    assert draws_a == draws_b
