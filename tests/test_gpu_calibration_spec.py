"""Tests for the GPU spec and the interference calibration."""

import pytest

from repro.gpu.calibration import DEFAULT_CALIBRATION, GpuCalibration
from repro.gpu.spec import GpuSpec, JETSON_XAVIER, RTX_2080_TI


def test_rtx_2080_ti_matches_paper_platform():
    assert RTX_2080_TI.num_sms == 68
    assert RTX_2080_TI.mps_supported


def test_embedded_gpu_has_no_mps():
    assert not JETSON_XAVIER.mps_supported


def test_spec_validation():
    with pytest.raises(ValueError):
        GpuSpec(name="bad", num_sms=0)
    with pytest.raises(ValueError):
        GpuSpec(name="bad", num_sms=4, launch_overhead_ms=-1.0)


def test_intra_efficiency_decreases_with_concurrency():
    calibration = DEFAULT_CALIBRATION
    values = [calibration.intra_efficiency(n) for n in range(1, 6)]
    assert values[0] == pytest.approx(1.0)
    assert all(earlier > later for earlier, later in zip(values, values[1:]))


def test_contention_efficiency_is_one_without_pressure():
    assert DEFAULT_CALIBRATION.contention_efficiency(1.0, 0.5) == pytest.approx(1.0)
    assert DEFAULT_CALIBRATION.contention_efficiency(0.5, 0.5) == pytest.approx(1.0)


def test_contention_efficiency_penalizes_memory_bound_kernels_more():
    calibration = DEFAULT_CALIBRATION
    compute_bound = calibration.contention_efficiency(3.0, 0.1)
    memory_bound = calibration.contention_efficiency(3.0, 0.9)
    assert memory_bound < compute_bound < 1.0


def test_noise_sigma_grows_with_sharing():
    calibration = DEFAULT_CALIBRATION
    quiet = calibration.noise_sigma(1, 1.0)
    shared = calibration.noise_sigma(3, 1.0)
    contended = calibration.noise_sigma(3, 2.5)
    assert quiet < shared < contended


def test_custom_calibration_round_trip():
    calibration = GpuCalibration(intra_stream_penalty=0.0)
    assert calibration.intra_efficiency(10) == pytest.approx(1.0)
