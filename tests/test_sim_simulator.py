"""Tests for the discrete-event simulator core."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.events import Event
from repro.sim.simulator import SimulationError, Simulator


def test_initial_time_is_zero():
    assert Simulator().now == 0.0


def test_custom_start_time():
    assert Simulator(start_time=5.0).now == 5.0


def test_schedule_at_runs_callback_at_time():
    sim = Simulator()
    seen = []
    sim.schedule_at(3.0, lambda s: seen.append(s.now))
    sim.run_until(10.0)
    assert seen == [3.0]


def test_schedule_after_uses_relative_delay():
    sim = Simulator()
    seen = []
    sim.schedule_at(2.0, lambda s: s.schedule_after(1.5, lambda s2: seen.append(s2.now)))
    sim.run_until(10.0)
    assert seen == [3.5]


def test_schedule_in_the_past_raises():
    sim = Simulator()
    sim.schedule_at(5.0, lambda s: None)
    sim.run_until(5.0)
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda s: None)


def test_negative_delay_raises():
    with pytest.raises(SimulationError):
        Simulator().schedule_after(-1.0, lambda s: None)


def test_run_until_advances_clock_even_with_empty_queue():
    sim = Simulator()
    sim.run_until(42.0)
    assert sim.now == 42.0


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule_at(5.0, lambda s: order.append("b"))
    sim.schedule_at(1.0, lambda s: order.append("a"))
    sim.schedule_at(9.0, lambda s: order.append("c"))
    sim.run_until(10.0)
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for label in "abcde":
        sim.schedule_at(1.0, lambda s, label=label: order.append(label))
    sim.run_until(2.0)
    assert order == list("abcde")


def test_priority_breaks_ties_before_sequence():
    sim = Simulator()
    order = []
    sim.schedule_at(1.0, lambda s: order.append("low"), priority=5)
    sim.schedule_at(1.0, lambda s: order.append("high"), priority=-5)
    sim.run_until(2.0)
    assert order == ["high", "low"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    seen = []
    handle = sim.schedule_at(1.0, lambda s: seen.append(1))
    handle.cancel()
    sim.run_until(2.0)
    assert seen == []
    assert handle.cancelled


def test_run_until_does_not_fire_later_events():
    sim = Simulator()
    seen = []
    sim.schedule_at(5.0, lambda s: seen.append(5))
    sim.schedule_at(15.0, lambda s: seen.append(15))
    sim.run_until(10.0)
    assert seen == [5]
    sim.run_until(20.0)
    assert seen == [5, 15]


def test_events_fired_counter_ignores_cancelled():
    sim = Simulator()
    handle = sim.schedule_at(1.0, lambda s: None)
    sim.schedule_at(2.0, lambda s: None)
    handle.cancel()
    sim.run_until(3.0)
    assert sim.events_fired == 1


def test_peek_next_time_skips_cancelled():
    sim = Simulator()
    first = sim.schedule_at(1.0, lambda s: None)
    sim.schedule_at(2.0, lambda s: None)
    first.cancel()
    assert sim.peek_next_time() == 2.0


def test_peek_next_time_empty_queue_returns_none():
    assert Simulator().peek_next_time() is None


def test_stop_halts_run_loop():
    sim = Simulator()
    seen = []
    sim.schedule_at(1.0, lambda s: (seen.append(1), s.stop()))
    sim.schedule_at(2.0, lambda s: seen.append(2))
    sim.run_until(10.0)
    assert seen == [1]


def test_run_with_max_events():
    sim = Simulator()
    seen = []
    for t in range(5):
        sim.schedule_at(float(t), lambda s, t=t: seen.append(t))
    sim.run(max_events=3)
    assert seen == [0, 1, 2]


def test_event_fire_skips_cancelled_event_object():
    event = Event(time=1.0, callback=lambda s: (_ for _ in ()).throw(RuntimeError))
    event.cancelled = True
    event.fire(None)  # must not raise


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_property_all_events_fire_in_nondecreasing_time(times):
    sim = Simulator()
    seen = []
    for t in times:
        sim.schedule_at(t, lambda s: seen.append(s.now))
    sim.run_until(max(times))
    assert seen == sorted(seen)
    assert len(seen) == len(times)
