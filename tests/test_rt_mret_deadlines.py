"""Tests for MRET estimation (Eqs. 1-2) and virtual deadlines (Eq. 8)."""

import pytest
from hypothesis import given, strategies as st

from repro.rt.deadlines import virtual_deadline_shares
from repro.rt.mret import MretEstimator, TaskTimingModel


def test_mret_empty_returns_initial_or_zero():
    assert MretEstimator(window_size=5).value() == 0.0
    assert MretEstimator(window_size=5, initial=3.0).value() == 3.0


def test_mret_returns_window_maximum():
    estimator = MretEstimator(window_size=3)
    for value in (1.0, 5.0, 2.0):
        estimator.observe(value)
    assert estimator.value() == 5.0


def test_mret_old_samples_slide_out_of_the_window():
    estimator = MretEstimator(window_size=3)
    for value in (9.0, 1.0, 1.0, 1.0):
        estimator.observe(value)
    assert estimator.value() == 1.0


def test_mret_measurements_override_initial_even_if_smaller():
    estimator = MretEstimator(window_size=5, initial=10.0)
    estimator.observe(2.0)
    assert estimator.value() == 2.0


def test_mret_rejects_invalid_inputs():
    with pytest.raises(ValueError):
        MretEstimator(window_size=0)
    estimator = MretEstimator()
    with pytest.raises(ValueError):
        estimator.observe(-1.0)
    with pytest.raises(ValueError):
        estimator.set_initial(-1.0)


def test_mret_window_values_in_order():
    estimator = MretEstimator(window_size=2)
    estimator.observe(1.0)
    estimator.observe(2.0)
    estimator.observe(3.0)
    assert estimator.window_values() == [2.0, 3.0]


@given(st.lists(st.floats(min_value=0.0, max_value=1e3), min_size=1, max_size=30),
       st.integers(min_value=1, max_value=10))
def test_property_mret_equals_max_of_recent_window(samples, window_size):
    estimator = MretEstimator(window_size=window_size)
    for sample in samples:
        estimator.observe(sample)
    assert estimator.value() == pytest.approx(max(samples[-window_size:]))
    assert estimator.observations == min(window_size, len(samples))


def test_timing_model_total_is_sum_of_stages():
    timing = TaskTimingModel(num_stages=3, window_size=5)
    timing.set_afet([1.0, 2.0, 3.0])
    assert timing.total() == pytest.approx(6.0)
    timing.observe(1, 5.0)
    assert timing.stage_value(1) == 5.0
    assert timing.total() == pytest.approx(9.0)
    assert timing.stage_values() == [1.0, 5.0, 3.0]


def test_timing_model_validates_afet_length():
    timing = TaskTimingModel(num_stages=2)
    with pytest.raises(ValueError):
        timing.set_afet([1.0])


def test_virtual_deadline_shares_proportional_to_mret():
    shares = virtual_deadline_shares([1.0, 3.0], relative_deadline=40.0)
    assert shares == pytest.approx([10.0, 30.0])


def test_virtual_deadline_zero_mret_splits_uniformly():
    shares = virtual_deadline_shares([0.0, 0.0, 0.0, 0.0], relative_deadline=20.0)
    assert shares == pytest.approx([5.0] * 4)


def test_virtual_deadline_validation():
    with pytest.raises(ValueError):
        virtual_deadline_shares([], 10.0)
    with pytest.raises(ValueError):
        virtual_deadline_shares([1.0], 0.0)
    with pytest.raises(ValueError):
        virtual_deadline_shares([-1.0, 2.0], 10.0)


@given(
    mrets=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=8),
    deadline=st.floats(min_value=1.0, max_value=1000.0),
)
def test_property_shares_sum_to_relative_deadline(mrets, deadline):
    shares = virtual_deadline_shares(mrets, deadline)
    assert sum(shares) == pytest.approx(deadline, rel=1e-6)
    assert all(share >= 0 for share in shares)
    # Longer stages never receive a smaller share than shorter ones.
    paired = sorted(zip(mrets, shares))
    share_values = [share for _, share in paired]
    assert all(b >= a - 1e-9 for a, b in zip(share_values, share_values[1:]))
