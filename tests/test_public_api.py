"""Tests of the top-level package surface (what the README advertises)."""

import repro


def test_version_is_exposed():
    assert repro.__version__ == "1.0.0"


def test_public_names_are_importable():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_pipeline_via_public_api_only():
    model = repro.build_model("resnet18")
    taskset = repro.table2_taskset("resnet18", model=model, scale=0.3)
    config = repro.DarisConfig.mps_config(3, 3.0)
    result = repro.run_daris_scenario(taskset, config, horizon_ms=600.0, seed=1)
    assert result.total_jps > 0
    assert result.metrics.high.deadline_miss_rate <= 1.0


def test_available_models_lists_the_zoo():
    assert set(repro.available_models()) == {"resnet18", "resnet50", "unet", "inceptionv3"}


def test_platform_is_constructible_from_public_api():
    platform = repro.GpuPlatform(
        repro.Simulator(),
        repro.PlatformConfig(num_contexts=2, streams_per_context=1, oversubscription=2.0),
        spec=repro.RTX_2080_TI,
    )
    assert platform.num_contexts == 2
