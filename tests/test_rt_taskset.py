"""Tests for task-set construction (Table II, mixed and ratio sets)."""

import pytest

from repro.rt.task import Priority
from repro.rt.taskset import (
    TABLE2,
    demanded_load_factor,
    make_taskset,
    mixed_taskset,
    ratio_taskset,
    table2_taskset,
)


def test_table2_resnet18_composition(resnet18):
    taskset = table2_taskset("resnet18", model=resnet18)
    assert taskset.num_high == 17
    assert taskset.num_low == 34
    assert taskset.total_demand_jps == pytest.approx(51 * 30.0)


def test_table2_unet_and_inception(unet, inceptionv3):
    unet_set = table2_taskset("unet", model=unet)
    assert (unet_set.num_high, unet_set.num_low) == (5, 10)
    inception_set = table2_taskset("inceptionv3", model=inceptionv3)
    assert (inception_set.num_high, inception_set.num_low) == (9, 18)
    assert all(task.period_ms == pytest.approx(1000.0 / 24.0) for task in inception_set.tasks)


def test_table2_demand_is_about_150_percent_of_upper_baseline(all_models):
    for name, model in all_models.items():
        if name == "resnet50":
            continue
        taskset = table2_taskset(name, model=model)
        load = demanded_load_factor(taskset, model.profile.batched_max_jps)
        assert 1.2 <= load <= 1.7, name


def test_table2_unknown_name_raises():
    with pytest.raises(KeyError):
        table2_taskset("alexnet")


def test_table2_scale_shrinks_the_set(resnet18):
    taskset = table2_taskset("resnet18", model=resnet18, scale=0.25)
    assert taskset.num_high < 17 and taskset.num_low < 34
    assert taskset.num_high >= 1 and taskset.num_low >= 1


def test_make_taskset_round_robin_models_and_phases(resnet18, unet):
    taskset = make_taskset([resnet18, unet], num_high=2, num_low=2, task_jps=10.0)
    assert [task.model.name for task in taskset.tasks] == ["resnet18", "unet", "resnet18", "unet"]
    phases = [task.phase_ms for task in taskset.tasks]
    assert len(set(phases)) == len(phases)
    assert all(0 <= phase < 100.0 for phase in phases)
    priorities = [task.priority for task in taskset.tasks]
    assert priorities == [Priority.HIGH, Priority.HIGH, Priority.LOW, Priority.LOW]


def test_make_taskset_validation(resnet18):
    with pytest.raises(ValueError):
        make_taskset([resnet18], num_high=0, num_low=0, task_jps=10.0)
    with pytest.raises(ValueError):
        make_taskset([], num_high=1, num_low=0, task_jps=10.0)
    with pytest.raises(ValueError):
        make_taskset([resnet18], num_high=1, num_low=1, task_jps=0.0)


def test_batched_taskset_keeps_inference_demand_constant(resnet18):
    plain = table2_taskset("resnet18", model=resnet18, batch_size=1)
    batched = table2_taskset("resnet18", model=resnet18, batch_size=4)
    assert batched.total_demand_jps == pytest.approx(plain.total_demand_jps)
    assert batched.tasks[0].period_ms == pytest.approx(4 * plain.tasks[0].period_ms)


def test_mixed_taskset_contains_all_models(all_models):
    taskset = mixed_taskset(models={k: v for k, v in all_models.items() if k != "resnet50"})
    names = {task.model.name for task in taskset.tasks}
    assert names == {"resnet18", "unet", "inceptionv3"}
    assert taskset.num_high >= 3
    task_ids = [task.task_id for task in taskset.tasks]
    assert len(task_ids) == len(set(task_ids))


def test_ratio_taskset_scales_with_load_and_ratio(resnet18):
    full = ratio_taskset("resnet18", hp_fraction=1 / 3, load_factor=1.0, model=resnet18)
    overload = ratio_taskset("resnet18", hp_fraction=1 / 3, load_factor=1.5, model=resnet18)
    assert overload.total_demand_jps > full.total_demand_jps
    all_hp = ratio_taskset("resnet18", hp_fraction=1.0, load_factor=1.0, model=resnet18)
    assert all_hp.num_low == 0
    assert all_hp.num_high == len(all_hp.tasks)


def test_ratio_taskset_validation(resnet18):
    with pytest.raises(ValueError):
        ratio_taskset("resnet18", hp_fraction=1.5, load_factor=1.0, model=resnet18)
    with pytest.raises(ValueError):
        ratio_taskset("resnet18", hp_fraction=0.5, load_factor=0.0, model=resnet18)


def test_demanded_load_factor_validation(resnet18):
    taskset = table2_taskset("resnet18", model=resnet18)
    with pytest.raises(ValueError):
        demanded_load_factor(taskset, 0.0)


def test_table2_registry_matches_paper():
    assert TABLE2["resnet18"].task_jps == 30.0
    assert TABLE2["unet"].task_jps == 24.0
    assert TABLE2["inceptionv3"].task_jps == 24.0
