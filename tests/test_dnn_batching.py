"""Tests for the batching model (Figure 1 / Table I calibration)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dnn.batching import (
    batched_latency_ms,
    batched_stage_specs,
    batching_gain,
    batching_target_jps,
    batching_throughput_curve,
    work_per_inference,
)
from repro.dnn.zoo import build_model


def test_batch_size_one_returns_original_stages(resnet18):
    assert batched_stage_specs(resnet18, 1) == list(resnet18.stages)


def test_invalid_batch_size_rejected(resnet18):
    with pytest.raises(ValueError):
        batched_stage_specs(resnet18, 0)
    with pytest.raises(ValueError):
        work_per_inference(resnet18, 0)


def test_batched_parallelism_widens_and_caps(resnet18):
    stages = batched_stage_specs(resnet18, 8)
    for original, batched in zip(resnet18.stages, stages):
        assert batched.parallelism >= original.parallelism
        assert batched.parallelism <= 68.0
        assert batched.num_kernels == original.num_kernels


def test_batched_throughput_matches_table1_gain(all_models):
    expectations = {"resnet18": 1.63, "resnet50": 1.73, "unet": 1.08, "inceptionv3": 3.13}
    for name, model in all_models.items():
        gain = batching_gain(model, 16)
        assert gain == pytest.approx(expectations[name], rel=0.05), name


def test_batching_curve_is_monotonically_non_decreasing(all_models):
    for name, model in all_models.items():
        curve = batching_throughput_curve(model, [1, 2, 4, 8, 16, 32])
        assert all(b >= a - 1e-6 for a, b in zip(curve, curve[1:])), name


def test_inceptionv3_benefits_most_unet_least(all_models):
    gains = {name: batching_gain(model, 8) for name, model in all_models.items()}
    assert gains["inceptionv3"] > gains["resnet18"] > gains["unet"]


def test_batched_latency_grows_with_batch_size(resnet18):
    assert batched_latency_ms(resnet18, 8) > batched_latency_ms(resnet18, 2)


def test_batch_size_one_target_equals_single_stream(resnet18):
    assert batching_target_jps(resnet18, 1) == resnet18.profile.single_stream_jps


def test_per_inference_work_interpolates_towards_saturation(inceptionv3):
    w1 = work_per_inference(inceptionv3, 1)
    w4 = work_per_inference(inceptionv3, 4)
    w32 = work_per_inference(inceptionv3, 32)
    # InceptionV3's big batching gain means large batches need *less* work per
    # inference than the launch-gap-dominated single inference.
    assert w1 == pytest.approx(inceptionv3.total_work)
    assert w32 < w4 < w1


@settings(deadline=None, max_examples=20)
@given(batch=st.integers(min_value=1, max_value=64))
def test_property_batched_work_split_preserves_fractions(batch):
    model = build_model("resnet18")
    stages = batched_stage_specs(model, batch)
    total = sum(stage.work for stage in stages)
    for original, batched in zip(model.stages, stages):
        assert batched.work / total == pytest.approx(original.work / model.total_work, rel=1e-6)
