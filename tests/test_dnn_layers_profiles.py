"""Tests for layer descriptors and calibration profiles."""

import pytest

from repro.dnn.layer import LayerKind, concat, conv2d, elementwise, linear, pool2d
from repro.dnn.profiles import PROFILES, get_profile


def test_conv2d_flops_scale_with_channels_and_spatial():
    small = conv2d("a", 16, 16, 28)
    big_channels = conv2d("b", 32, 32, 28)
    big_spatial = conv2d("c", 16, 16, 56)
    assert big_channels.flops_m == pytest.approx(small.flops_m * 4)
    assert big_spatial.flops_m == pytest.approx(small.flops_m * 4)


def test_conv2d_stride_reduces_output_elements():
    stride1 = conv2d("a", 16, 32, 28, stride=1)
    stride2 = conv2d("b", 16, 32, 28, stride=2)
    assert stride2.output_elements == stride1.output_elements // 4


def test_conv2d_unfused_expands_to_three_kernels():
    assert conv2d("a", 8, 8, 14, fused_bn_relu=False).kernel_count == 3
    assert conv2d("a", 8, 8, 14).kernel_count == 1


def test_pool_linear_elementwise_concat_kinds():
    assert pool2d("p", 64, 56).kind is LayerKind.POOL2D
    assert linear("l", 512, 1000).kind is LayerKind.LINEAR
    assert elementwise("e", 64, 56).kind is LayerKind.ELEMENTWISE
    assert concat("c", 128, 28).kind is LayerKind.CONCAT


def test_linear_flops_formula():
    layer = linear("fc", 512, 1000)
    assert layer.flops_m == pytest.approx(2 * 512 * 1000 / 1e6)
    assert layer.output_elements == 1000


def test_relative_width_grows_with_output_size():
    narrow = linear("fc", 512, 10)
    wide = conv2d("conv", 64, 64, 112)
    assert wide.relative_width > narrow.relative_width


def test_layer_validation():
    with pytest.raises(ValueError):
        conv2d("bad", 3, 0, 0)


def test_profiles_cover_all_paper_networks():
    assert set(PROFILES) == {"resnet18", "resnet50", "unet", "inceptionv3"}


def test_profile_table1_anchors():
    resnet18 = get_profile("resnet18")
    assert resnet18.single_stream_jps == 627.0
    assert resnet18.batched_max_jps == 1025.0
    assert resnet18.batching_gain == pytest.approx(1.63, abs=0.02)
    unet = get_profile("UNet")  # case-insensitive lookup
    assert unet.batching_gain == pytest.approx(1.08, abs=0.01)


def test_profile_isolated_latency_is_inverse_of_min_jps():
    profile = get_profile("inceptionv3")
    assert profile.isolated_latency_ms == pytest.approx(1000.0 / 142.0)


def test_profile_occupancy_ordering_matches_architecture_story():
    # UNet (wide) occupies far more of the GPU per job than InceptionV3 (narrow).
    assert get_profile("unet").occupancy_fraction > get_profile("resnet18").occupancy_fraction
    assert get_profile("resnet18").occupancy_fraction > get_profile("inceptionv3").occupancy_fraction


def test_profile_colocation_roofline():
    profile = get_profile("resnet18")
    assert profile.colocation_roofline_jps() == pytest.approx(627.0 / 0.52)


def test_unknown_profile_raises():
    with pytest.raises(KeyError):
        get_profile("vgg16")


def test_profile_preferred_batch_sizes_match_paper():
    assert get_profile("resnet18").preferred_batch_size == 4
    assert get_profile("unet").preferred_batch_size == 2
    assert get_profile("inceptionv3").preferred_batch_size == 8
