"""Tests for the task/job/stage model and utilization accounting (Eqs. 3-7, 11-12)."""

import pytest

from repro.rt.task import Job, JobState, Priority, Task, TaskSpec
from repro.rt.utilization import (
    active_low_priority_utilization,
    admission_test,
    context_priority_utilization,
    context_total_utilization,
    remaining_utilization,
    task_utilization,
)


def _task(resnet18, task_id=0, priority=Priority.HIGH, period=33.33):
    spec = TaskSpec(task_id=task_id, model=resnet18, period_ms=period, priority=priority)
    task = Task(spec)
    task.timing.set_afet([1.0] * task.num_stages)
    return task


def test_task_spec_defaults_and_validation(resnet18):
    spec = TaskSpec(task_id=1, model=resnet18, period_ms=40.0, priority=Priority.LOW)
    assert spec.relative_deadline_ms == 40.0
    assert spec.name == "resnet18/task1"
    assert not spec.is_high_priority
    with pytest.raises(ValueError):
        TaskSpec(task_id=1, model=resnet18, period_ms=0.0, priority=Priority.LOW)
    with pytest.raises(ValueError):
        TaskSpec(task_id=1, model=resnet18, period_ms=10.0, priority=Priority.LOW, batch_size=0)


def test_task_utilization_is_mret_over_period(resnet18):
    task = _task(resnet18, period=20.0)
    assert task.mret_total() == pytest.approx(4.0)
    assert task_utilization(task) == pytest.approx(0.2)


def test_job_release_creates_stage_instances(resnet18):
    task = _task(resnet18)
    job = task.release_job(release_time=100.0)
    assert job.num_stages == task.num_stages
    assert job.absolute_deadline == pytest.approx(100.0 + 33.33)
    assert job.state is JobState.RELEASED
    assert task.jobs_released == 1
    assert job.current_stage.stage_index == 0
    assert job.stages[-1].is_last and not job.stages[0].is_last


def test_job_advance_and_completion_flags(resnet18):
    task = _task(resnet18)
    job = task.release_job(0.0)
    for _ in range(job.num_stages):
        assert not job.is_finished
        job.advance()
    assert job.is_finished
    job.completion_time = 30.0
    assert job.response_time == pytest.approx(30.0)
    assert job.missed_deadline is False
    job.completion_time = 50.0
    assert job.missed_deadline is True


def test_job_remaining_mret_shrinks_as_stages_complete(resnet18):
    task = _task(resnet18)
    job = task.release_job(0.0)
    assert job.remaining_mret() == pytest.approx(4.0)
    job.advance()
    assert job.remaining_mret() == pytest.approx(3.0)


def test_context_utilization_split_by_priority(resnet18):
    hp = _task(resnet18, 0, Priority.HIGH, period=10.0)
    lp = _task(resnet18, 1, Priority.LOW, period=20.0)
    other = _task(resnet18, 2, Priority.LOW, period=20.0)
    hp.context_index = lp.context_index = 0
    other.context_index = 1
    tasks = [hp, lp, other]
    high, low = context_priority_utilization(tasks, 0)
    assert high == pytest.approx(0.4)
    assert low == pytest.approx(0.2)
    assert context_total_utilization(tasks, 0) == pytest.approx(0.6)
    assert context_total_utilization(tasks, 1) == pytest.approx(0.2)


def test_active_low_utilization_counts_each_task_once(resnet18):
    task = _task(resnet18, 3, Priority.LOW, period=20.0)
    task.context_index = 0
    first, second = task.release_job(0.0), task.release_job(20.0)
    first.context_index = second.context_index = 0
    assert active_low_priority_utilization([first, second], 0) == pytest.approx(0.2)
    assert active_low_priority_utilization([first, second], 1) == 0.0


def test_remaining_utilization_equation11():
    assert remaining_utilization(1, 0.3) == pytest.approx(0.7)
    assert remaining_utilization(3, 0.5) == pytest.approx(2.5)
    with pytest.raises(ValueError):
        remaining_utilization(0, 0.1)


def test_admission_test_equation12():
    assert admission_test(1, high_priority_utilization=0.4, active_low_utilization=0.3,
                          candidate_utilization=0.2)
    assert not admission_test(1, high_priority_utilization=0.4, active_low_utilization=0.5,
                              candidate_utilization=0.2)
