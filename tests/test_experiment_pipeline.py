"""Tests for the declarative experiment pipeline.

Covers the registry/engine/cache stack: request value identity and cache-key
invalidation, lossless metric round-trips, cache hit/miss behaviour with
bit-identical cached rows, seed replication against a hand-rolled serial
loop, traced-request cache bypass, and the CLI round-trip (second invocation
served entirely from cache, zero simulator runs).
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.stats import replication_summary, t_critical_95
from repro.analysis.tables import format_replicated_table
from repro.experiments import cli
from repro.experiments.cache import ResultCache
from repro.experiments.engine import (
    aggregate_replicated_rows,
    run_cached_scenarios,
    run_experiment,
)
from repro.experiments.parallel import ScenarioRequest
from repro.experiments.registry import (
    ExperimentPlan,
    ExperimentSpec,
    all_experiments,
    get_experiment,
)
from repro.experiments.runner import ScenarioResult, run_daris_scenario
from repro.gpu.calibration import GpuCalibration
from repro.gpu.spec import JETSON_XAVIER
from repro.rt.taskset import table2_taskset
from repro.scheduler.config import DarisConfig

TINY_HORIZON = 600.0
TINY_CONFIGS = [DarisConfig.mps_config(2, 2.0), DarisConfig.str_config(2)]


def _tiny_taskset(scale: float = 0.25):
    return table2_taskset("resnet18", scale=scale)


def _tiny_row(config: DarisConfig, result: ScenarioResult) -> dict:
    return {
        "config": config.label(),
        "total_jps": round(result.total_jps, 1),
        "lp_dmr": round(result.lp_dmr, 4),
        "hp_resp_p95": round(result.metrics.high.response_time_stats()["p95"], 3),
    }


def _tiny_spec(with_trace: bool = False) -> ExperimentSpec:
    def build(ctx):
        taskset = _tiny_taskset()
        requests = [
            ScenarioRequest(taskset, config, TINY_HORIZON, seed=ctx.seed, with_trace=with_trace)
            for config in TINY_CONFIGS
        ]

        def make_rows(row_ctx):
            rows = [
                _tiny_row(config, result)
                for config, result in zip(TINY_CONFIGS, row_ctx.results)
            ]
            if with_trace:
                for result, row in zip(row_ctx.results, rows):
                    assert result.trace is not None and result.trace.stage_records
            return rows

        return ExperimentPlan(requests=requests, make_rows=make_rows)

    return ExperimentSpec(name="tiny", title="tiny test spec", build=build)


# --------------------------------------------------------------------- identity


def test_scenario_request_value_identity():
    first = ScenarioRequest(_tiny_taskset(), TINY_CONFIGS[0], TINY_HORIZON, seed=3)
    second = ScenarioRequest(_tiny_taskset(), TINY_CONFIGS[0], TINY_HORIZON, seed=3)
    assert first == second
    assert hash(first) == hash(second)
    assert first.cache_key() == second.cache_key()
    assert len({first, second}) == 1


def test_cache_key_changes_when_any_request_field_changes():
    base = ScenarioRequest(_tiny_taskset(), TINY_CONFIGS[0], TINY_HORIZON, seed=3)
    variants = [
        base,
        ScenarioRequest(_tiny_taskset(0.3), TINY_CONFIGS[0], TINY_HORIZON, seed=3),
        ScenarioRequest(
            _tiny_taskset(), TINY_CONFIGS[0].with_overrides(window_size=7), TINY_HORIZON, seed=3
        ),
        ScenarioRequest(_tiny_taskset(), TINY_CONFIGS[0], TINY_HORIZON + 100.0, seed=3),
        ScenarioRequest(_tiny_taskset(), TINY_CONFIGS[0], TINY_HORIZON, seed=4),
        ScenarioRequest(_tiny_taskset(), TINY_CONFIGS[0], TINY_HORIZON, seed=3, with_trace=True),
        ScenarioRequest(_tiny_taskset(), TINY_CONFIGS[0], TINY_HORIZON, seed=3, label="renamed"),
        ScenarioRequest(
            _tiny_taskset(), TINY_CONFIGS[0], TINY_HORIZON, seed=3, gpu=JETSON_XAVIER
        ),
        ScenarioRequest(
            _tiny_taskset(),
            TINY_CONFIGS[0],
            TINY_HORIZON,
            seed=3,
            calibration=GpuCalibration(intra_stream_penalty=0.06),
        ),
    ]
    keys = [request.cache_key() for request in variants]
    assert len(set(keys)) == len(variants)


# ------------------------------------------------------------------ round-trips


def test_metrics_round_trip_is_lossless(resnet18):
    taskset = table2_taskset("resnet18", model=resnet18, scale=0.3)
    result = run_daris_scenario(taskset, TINY_CONFIGS[0], TINY_HORIZON, seed=2)
    restored = ScenarioResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert restored == result  # dataclass equality: every field, every float, bit-exact
    assert restored.metrics.high.response_time_stats() == result.metrics.high.response_time_stats()
    assert restored.config.label() == result.config.label()


def test_traced_results_refuse_serialization(resnet18):
    taskset = table2_taskset("resnet18", model=resnet18, scale=0.3)
    result = run_daris_scenario(taskset, TINY_CONFIGS[0], TINY_HORIZON, seed=2, with_trace=True)
    with pytest.raises(ValueError):
        result.to_dict()


# ------------------------------------------------------------------------ cache


def test_cache_hit_miss_and_traced_refusal(tmp_path, resnet18):
    cache = ResultCache(tmp_path / "cache")
    taskset = table2_taskset("resnet18", model=resnet18, scale=0.3)
    request = ScenarioRequest(taskset, TINY_CONFIGS[0], TINY_HORIZON, seed=2)
    assert cache.get(request) is None  # cold miss
    result = run_daris_scenario(taskset, TINY_CONFIGS[0], TINY_HORIZON, seed=2)
    assert cache.put(request, result)
    cached = cache.get(request)
    assert cached == result
    # mutating any field invalidates: a different seed misses
    assert cache.get(ScenarioRequest(taskset, TINY_CONFIGS[0], TINY_HORIZON, seed=3)) is None
    # traced requests are refused outright
    traced_request = ScenarioRequest(taskset, TINY_CONFIGS[0], TINY_HORIZON, seed=2, with_trace=True)
    traced_result = run_daris_scenario(
        taskset, TINY_CONFIGS[0], TINY_HORIZON, seed=2, with_trace=True
    )
    assert not cache.put(traced_request, traced_result)
    assert len(cache) == 1


def test_unwritable_cache_degrades_to_uncached(tmp_path, resnet18, monkeypatch):
    """A broken cache (read-only dir, disk full) must return False, not raise —
    an exception here would abort a sweep whose scenarios already simulated."""
    import repro.experiments.cache as cache_module

    cache = ResultCache(tmp_path / "cache")
    taskset = table2_taskset("resnet18", model=resnet18, scale=0.3)
    request = ScenarioRequest(taskset, TINY_CONFIGS[0], TINY_HORIZON, seed=2)
    result = run_daris_scenario(taskset, TINY_CONFIGS[0], TINY_HORIZON, seed=2)

    def _unwritable(*args, **kwargs):
        raise PermissionError("read-only cache directory")

    monkeypatch.setattr(cache_module.tempfile, "mkstemp", _unwritable)
    assert cache.put(request, result) is False
    assert cache.get(request) is None
    monkeypatch.undo()
    assert cache.put(request, result) is True  # healthy path still works


def test_cache_directory_is_created_lazily(tmp_path, resnet18):
    """Regression: constructing (or probing) a cache must not mkdir — only a
    successful put may create the store on disk."""
    cache_dir = tmp_path / "cache"
    cache = ResultCache(cache_dir)
    assert not cache_dir.exists() and not cache.exists()
    taskset = table2_taskset("resnet18", model=resnet18, scale=0.3)
    request = ScenarioRequest(taskset, TINY_CONFIGS[0], TINY_HORIZON, seed=2)
    assert cache.get(request) is None
    assert not cache.contains(cache.key_for(request))
    assert len(cache) == 0
    assert not cache_dir.exists()  # still pure inspection
    result = run_daris_scenario(taskset, TINY_CONFIGS[0], TINY_HORIZON, seed=2)
    assert cache.put(request, result)
    assert cache_dir.is_dir() and cache.exists()
    assert cache.contains(cache.key_for(request))
    assert list(cache.iter_keys()) == [cache.key_for(request)]


def test_cache_prune_and_clear(tmp_path, resnet18):
    cache = ResultCache(tmp_path / "cache")
    taskset = table2_taskset("resnet18", model=resnet18, scale=0.3)
    result = run_daris_scenario(taskset, TINY_CONFIGS[0], TINY_HORIZON, seed=2)
    for seed in (1, 2, 3, 4):
        cache.put(ScenarioRequest(taskset, TINY_CONFIGS[0], TINY_HORIZON, seed=seed), result)
    assert len(cache) == 4
    assert cache.prune(max_entries=2) == 2
    assert len(cache) == 2
    assert cache.clear() == 2
    assert len(cache) == 0


def test_cached_rows_are_bit_identical_to_fresh(tmp_path):
    spec = _tiny_spec()
    cache = ResultCache(tmp_path / "cache")
    fresh = run_experiment(spec, quick=True, processes=1, cache=cache)
    assert fresh.simulated == len(TINY_CONFIGS) and fresh.cache_hits == 0
    cached = run_experiment(spec, quick=True, processes=1, cache=cache)
    assert cached.simulated == 0
    assert cached.cache_hits == len(TINY_CONFIGS)
    assert cached.rows == fresh.rows  # bit-identical, not approximately equal


def test_run_cached_scenarios_round_trip(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    taskset = _tiny_taskset()
    requests = [
        ScenarioRequest(taskset, config, TINY_HORIZON, seed=5) for config in TINY_CONFIGS
    ]
    first = run_cached_scenarios(requests, processes=1, cache=cache)
    assert cache.misses == len(requests)
    second = run_cached_scenarios(requests, processes=1, cache=cache)
    assert cache.hits == len(requests)
    assert first == second


def test_traced_requests_bypass_cache_in_engine(tmp_path):
    spec = _tiny_spec(with_trace=True)
    cache = ResultCache(tmp_path / "cache")
    first = run_experiment(spec, quick=True, processes=1, cache=cache)
    second = run_experiment(spec, quick=True, processes=1, cache=cache)
    for report in (first, second):
        assert report.simulated == len(TINY_CONFIGS)
        assert report.uncached == len(TINY_CONFIGS)
        assert report.cache_hits == 0
    assert len(cache) == 0


# -------------------------------------------------------------------- replication


def test_seed_replication_matches_hand_rolled_serial_loop(tmp_path):
    spec = _tiny_spec()
    cache = ResultCache(tmp_path / "cache")
    base_seed, seeds = 5, 3
    report = run_experiment(
        spec, quick=True, seeds=seeds, base_seed=base_seed, processes=1, cache=cache
    )
    assert report.seeds == [5, 6, 7]

    # Hand-rolled reference: serial scenarios, per-seed rows, column stats.
    taskset = _tiny_taskset()
    rows_by_seed = []
    for seed in range(base_seed, base_seed + seeds):
        rows_by_seed.append(
            [
                _tiny_row(config, run_daris_scenario(taskset, config, TINY_HORIZON, seed=seed))
                for config in TINY_CONFIGS
            ]
        )
    assert report.rows_by_seed == rows_by_seed
    for row_index, row in enumerate(report.rows):
        for column in ("total_jps", "lp_dmr", "hp_resp_p95"):
            values = [rows[row_index][column] for rows in rows_by_seed]
            if len(set(values)) == 1:  # constant columns pass through un-annotated
                assert row[column] == values[0]
                assert f"{column}_ci95" not in row or row[f"{column}_ci95"] == 0.0
                continue
            summary = replication_summary(values)
            assert row[column] == pytest.approx(round(summary["mean"], 4))
            assert row[f"{column}_std"] == pytest.approx(round(summary["std"], 4))
            assert row[f"{column}_ci95"] == pytest.approx(round(summary["ci95"], 4))


def test_aggregate_replicated_rows_mixed_type_columns():
    # sota-style column: numeric for some rows, "-" placeholder for others
    rows_by_seed = [
        [{"system": "baseline", "lp_dmr": "-"}, {"system": "daris", "lp_dmr": 0.01}],
        [{"system": "baseline", "lp_dmr": "-"}, {"system": "daris", "lp_dmr": 0.03}],
    ]
    aggregated = aggregate_replicated_rows(rows_by_seed)
    assert aggregated[0]["lp_dmr"] == "-"
    assert aggregated[0]["lp_dmr_ci95"] == "-"  # uniform schema, non-numeric cell
    assert aggregated[1]["lp_dmr"] == pytest.approx(0.02)  # numeric cells aggregate
    assert aggregated[1]["lp_dmr_std"] == pytest.approx(
        round(replication_summary([0.01, 0.03])["std"], 4)
    )


def test_aggregate_replicated_rows_mixed_schema_columns():
    """Regression: replicated columns were detected from the first row's keys
    only, so a numeric column introduced by a later row never earned its
    _std/_ci95 companions."""
    rows_by_seed = [
        [{"name": "a", "x": 1.0}, {"name": "b", "x": 2.0, "extra": 5.0}],
        [{"name": "a", "x": 3.0}, {"name": "b", "x": 4.0, "extra": 9.0}],
    ]
    aggregated = aggregate_replicated_rows(rows_by_seed)
    assert aggregated[1]["extra"] == pytest.approx(7.0)
    assert aggregated[1]["extra_std"] == pytest.approx(
        round(replication_summary([5.0, 9.0])["std"], 4)
    )
    assert "extra_ci95" in aggregated[1]
    # the column stays absent from rows that never had it
    assert "extra" not in aggregated[0]
    # a column emitted only by later *seeds* passes through instead of
    # vanishing (it cannot aggregate — some seeds lack it entirely)
    ragged = aggregate_replicated_rows(
        [[{"x": 1.0}], [{"x": 2.0, "rare_metric": 5.0}]]
    )
    assert ragged[0]["rare_metric"] == 5.0
    assert "rare_metric_std" not in ragged[0]


def test_aggregate_replicated_rows_column_rules():
    rows_by_seed = [
        [{"name": "a", "metric": 1.0, "constant": 7, "flag": True}],
        [{"name": "a", "metric": 3.0, "constant": 7, "flag": True}],
    ]
    aggregated = aggregate_replicated_rows(rows_by_seed)
    row = aggregated[0]
    assert row["metric"] == 2.0
    expected_std = replication_summary([1.0, 3.0])["std"]
    assert row["metric_std"] == pytest.approx(round(expected_std, 4))
    assert row["metric_ci95"] == pytest.approx(
        round(t_critical_95(1) * expected_std / (2 ** 0.5), 4)
    )
    # constants, strings and booleans pass through without companions
    assert row["constant"] == 7 and "constant_std" not in row
    assert row["name"] == "a" and row["flag"] is True
    rendered = format_replicated_table(aggregated)
    assert "±" in rendered and "metric_std" not in rendered


def test_non_replicable_specs_ignore_the_seed_axis():
    report = run_experiment("table2", quick=True, seeds=3)
    assert report.seeds == [1]
    assert len(report.rows_by_seed) == 1 and report.rows


def test_single_seed_rows_pass_through_unchanged(tmp_path):
    spec = _tiny_spec()
    report = run_experiment(spec, quick=True, seeds=1, processes=1)
    for row in report.rows:
        assert set(row) == {"config", "total_jps", "lp_dmr", "hp_resp_p95"}


# --------------------------------------------------------- scheduler backends


def _backend_matrix():
    """One small valid (scheduler, config, workload) cell per backend mode."""
    from repro.backends.configs import (
        BatchingConfig,
        ClockworkConfig,
        GSliceConfig,
        SingleConfig,
    )
    from repro.cluster.config import ClusterConfig
    from repro.sim.workload import POISSON_WORKLOAD, SATURATED_WORKLOAD, WorkloadSpec

    periodic = WorkloadSpec()
    return [
        ("daris", TINY_CONFIGS[0], periodic),
        ("daris", TINY_CONFIGS[0], POISSON_WORKLOAD),
        ("rtgpu", TINY_CONFIGS[0], periodic),
        ("rtgpu", TINY_CONFIGS[0], POISSON_WORKLOAD),
        ("clockwork", ClockworkConfig(), periodic),
        ("clockwork", ClockworkConfig(), POISSON_WORKLOAD),
        ("single", SingleConfig(), SATURATED_WORKLOAD),
        ("batching_server", BatchingConfig(batch_size=4), SATURATED_WORKLOAD),
        ("batching_server", BatchingConfig(batch_size=4), POISSON_WORKLOAD),
        ("gslice", GSliceConfig(), SATURATED_WORKLOAD),
        ("cluster", ClusterConfig(), periodic),
        ("cluster", ClusterConfig(), POISSON_WORKLOAD),
    ]


def _backend_requests(seed: int = 3):
    taskset = _tiny_taskset()
    return [
        ScenarioRequest(
            taskset, config, TINY_HORIZON, seed=seed, scheduler=scheduler, workload=workload
        )
        for scheduler, config, workload in _backend_matrix()
    ]


def test_every_backend_is_deterministic_for_a_fixed_seed():
    """Satellite: every registered backend (in every workload mode it
    supports) run twice with the same RngFactory seed yields bit-identical
    ScenarioMetrics."""
    from repro.backends import backend_names, get_backend

    requests = _backend_requests()
    assert {request.scheduler for request in requests} == set(backend_names())
    for request in requests:
        backend = get_backend(request.scheduler)
        first = backend.execute(request)
        second = backend.execute(request)
        # dataclass equality is field-by-field and float-exact
        assert first.metrics == second.metrics, (request.scheduler, request.workload)
        assert first == second


def test_cached_vs_fresh_rows_bit_identical_per_backend(tmp_path):
    """Satellite: a cache round-trip is lossless for every backend — the
    deterministic servers included, now that they flow through the engine."""
    cache = ResultCache(tmp_path / "cache")
    requests = _backend_requests()
    fresh = run_cached_scenarios(requests, processes=1, cache=cache)
    assert cache.misses == len(requests) and len(cache) == len(requests)
    cached = run_cached_scenarios(requests, processes=1, cache=cache)
    assert cache.hits == len(requests)
    for request, fresh_result, cached_result in zip(requests, fresh, cached):
        assert cached_result == fresh_result, request.scheduler


def test_backend_cache_keys_are_distinct_per_scheduler_and_workload():
    keys = [request.cache_key() for request in _backend_requests()]
    assert len(set(keys)) == len(keys)


# --------------------------------------------------------------------- registry


def test_registry_lists_every_paper_artefact():
    names = [spec.name for spec in all_experiments()]
    assert names == [
        "fig1_table1",
        "table2",
        "fig2",
        "fig4_6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "sota",
        "backends",
        "faults",
        "dse",
        "cluster",
    ]
    with pytest.raises(KeyError):
        get_experiment("fig99")


def test_module_run_wrappers_delegate_to_the_engine():
    from repro.experiments import table2_tasksets

    assert table2_tasksets.run() == run_experiment("table2").rows


# -------------------------------------------------------------------------- CLI


def test_cli_list_and_unknown_experiment(capsys):
    assert cli.main(["list"]) == cli.EXIT_OK
    out = capsys.readouterr().out
    assert "fig4_6" in out
    # the listing grows a scheduler-backends section
    assert "scheduler backends" in out
    for backend in ("daris", "clockwork", "gslice", "rtgpu", "single", "batching_server"):
        assert backend in out
    assert cli.main(["run", "fig99", "--no-cache"]) == cli.EXIT_UNKNOWN_EXPERIMENT
    # naming experiments and passing --all is a conflict, not a silent override
    assert cli.main(["run", "fig2", "--all", "--no-cache"]) == cli.EXIT_UNKNOWN_EXPERIMENT


def test_cli_list_json_includes_backends(capsys):
    assert cli.main(["list", "--json"]) == cli.EXIT_OK
    listing = json.loads(capsys.readouterr().out)
    assert {spec["name"] for spec in listing["experiments"]} >= {"fig4_6", "sota", "backends"}
    backends = {entry["name"]: entry for entry in listing["backends"]}
    assert set(backends) == {
        "daris", "batching_server", "clockwork", "gslice", "rtgpu", "single", "cluster",
    }
    assert backends["gslice"]["workloads"] == ["saturated"]
    assert backends["cluster"]["config"] == "ClusterConfig"
    assert backends["rtgpu"]["config"] == "DarisConfig"
    assert backends["daris"]["workloads"] == ["periodic", "poisson", "mmpp", "trace"]
    workloads = {entry["name"]: entry for entry in listing["workloads"]}
    assert set(workloads) == {"periodic", "poisson", "saturated", "bursty", "diurnal"}
    assert workloads["bursty"]["arrival"] == "mmpp"
    assert workloads["diurnal"]["label"] == "poisson+diurnal"


def test_cli_rejects_unknown_scheduler_backend():
    """Satellite: `--scheduler nosuch` is a clean argparse usage error (exit 2)
    naming the registered backends, not a KeyError traceback mid-run."""
    for argv in (
        ["run", "backends", "--no-cache", "--scheduler", "nosuch"],
        ["sweep", "plan", "backends", "--shards", "2", "--scheduler", "nosuch"],
    ):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(argv)
        assert excinfo.value.code == 2


def test_cli_rejects_unknown_workload_label(capsys):
    """Satellite: `--workload nosuch` is a clean argparse usage error (exit 2)
    listing the named workload vocabulary, not a KeyError traceback mid-run."""
    for argv in (
        ["run", "backends", "--no-cache", "--workload", "nosuch"],
        ["sweep", "plan", "backends", "--shards", "2", "--workload", "nosuch"],
    ):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(argv)
        assert excinfo.value.code == 2
        captured = capsys.readouterr()
        assert "bursty" in captured.err and "diurnal" in captured.err


def test_cli_workload_slice_runs_and_caches(tmp_path, capsys):
    """`run backends --workload bursty` runs exactly the MMPP column and a
    repeat is served entirely from cache (--expect-cached passes)."""
    cache_dir = str(tmp_path / "wlcache")
    argv = [
        "run", "backends", "--quick", "--jobs", "1",
        "--workload", "bursty", "--scheduler", "clockwork",
        "--model", "resnet50", "--cache-dir", cache_dir,
    ]
    assert cli.main(argv + ["--json"]) == cli.EXIT_OK
    rows = [json.loads(line) for line in capsys.readouterr().out.splitlines() if line.strip().startswith("{")]
    assert rows and all(row["workload"] == "bursty" for row in rows)
    assert cli.main(argv + ["--expect-cached"]) == cli.EXIT_OK


def test_cli_rejects_invalid_counts():
    """Regression: `run --seeds 0` (and sibling count oddities) used to leak a
    raw ValueError traceback from the engine instead of a usage error."""
    for argv in (
        ["run", "fig2", "--no-cache", "--seeds", "0"],
        ["run", "fig2", "--no-cache", "--seeds", "-3"],
        ["run", "fig2", "--no-cache", "--jobs", "0"],
        ["run", "fig2", "--no-cache", "--jobs", "-2"],
        ["run", "fig2", "--no-cache", "--base-seed", "-1"],
        ["sweep", "plan", "fig2", "--shards", "0"],
    ):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(argv)
        assert excinfo.value.code == 2  # argparse usage error, not a traceback


def test_cli_warns_on_parameters_a_spec_does_not_declare(capsys):
    """`run --all --model X` must flag specs that silently ignore the model
    parameter instead of pretending it applied."""
    assert cli.main(["run", "fig2", "--no-cache", "--model", "unet"]) == cli.EXIT_OK
    captured = capsys.readouterr()
    assert "fig2 does not declare parameter(s) model_name" in captured.err
    # a spec that does declare model_name raises no flag
    assert get_experiment("fig8").unknown_params({"model_name": "unet"}) == []


def test_cli_cache_reports_missing_directory(tmp_path, capsys):
    """Regression: `cache --cache-dir X` used to mkdir X as a side effect of
    pure inspection; now it reports the absence and touches nothing."""
    missing = tmp_path / "never-created"
    assert cli.main(["cache", "--cache-dir", str(missing)]) == cli.EXIT_NO_CACHE
    assert "no such cache" in capsys.readouterr().err
    assert not missing.exists()


def test_cli_run_analytic_experiment(capsys):
    assert cli.main(["run", "fig2", "--quick", "--no-cache"]) == cli.EXIT_OK
    out = capsys.readouterr().out
    assert "fig2" in out and "0 simulated" in out


def test_cli_repeat_invocation_served_from_cache(tmp_path, capsys):
    """Acceptance: a repeated CLI run completes via cache hits, zero simulator
    runs — for every backend, the deterministic baseline servers included.
    sota is 6 systems x 2 seeds = 12 cacheable scenarios, of which the three
    seed-insensitive baselines (batching/gslice/clockwork) share one
    simulation across both seeds: 3 x 2 + 3 = 9 simulated."""
    cache_dir = str(tmp_path / "cache")
    args = ["run", "sota", "--quick", "--seeds", "2", "--jobs", "1", "--cache-dir", cache_dir]
    assert cli.main(args) == cli.EXIT_OK
    first_out = capsys.readouterr().out
    assert "9 simulated" in first_out
    # second pass must be served entirely from cache: --expect-cached turns
    # any simulator run into a non-zero exit
    assert cli.main(args + ["--expect-cached"]) == cli.EXIT_OK
    second_out = capsys.readouterr().out
    assert "0 simulated" in second_out and "12 scenario(s) from cache" in second_out
    # ... and a cold cache fails --expect-cached
    cold = ["run", "sota", "--quick", "--jobs", "1", "--cache-dir", str(tmp_path / "cold")]
    assert cli.main(cold + ["--expect-cached"]) == cli.EXIT_NOT_CACHED
    capsys.readouterr()


def test_cli_expect_cached_exempts_traced_scenarios(tmp_path, capsys):
    """fig9's traced scenarios bypass the cache by design; they must not fail
    --expect-cached, or `run --all --expect-cached` could never pass."""
    args = [
        "run", "fig9", "--quick", "--jobs", "1",
        "--cache-dir", str(tmp_path / "cache"), "--expect-cached",
    ]
    assert cli.main(args) == cli.EXIT_OK
    assert "2 simulated (2 uncacheable)" in capsys.readouterr().out
