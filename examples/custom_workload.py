#!/usr/bin/env python3
"""Bring your own DNN *and* your own arrival process.

This example shows the extension path a downstream user would take: describe
a new network layer by layer, calibrate it with a custom profile, mix it with
the stock models in one task set, and let DARIS schedule the result — first
under the default periodic releases, then under the composable workload
layer's bursty (MMPP) and diurnal arrival processes.
"""

from repro import DarisConfig, Priority, RngFactory, Simulator, build_model
from repro.dnn.layer import conv2d, linear, pool2d
from repro.dnn.model import calibrate_model
from repro.dnn.profiles import DnnProfile
from repro.rt.task import TaskSpec
from repro.rt.taskset import TaskSetSpec
from repro.scheduler import DarisScheduler
from repro.sim.workload import WorkloadSpec


def build_tinynet():
    """A small 3-stage CNN calibrated like a lightweight edge detector."""
    profile = DnnProfile(
        name="tinynet",
        single_stream_jps=1500.0,
        batched_max_jps=2600.0,
        occupancy_fraction=0.45,
        batch_saturation_scale=2.0,
        memory_intensity=0.2,
        num_stages=3,
        preferred_batch_size=4,
    )
    stem = [
        conv2d("stem/conv1", 3, 32, 128, stride=2),
        conv2d("stem/conv2", 32, 64, 64),
        pool2d("stem/pool", 64, 64),
    ]
    body = [
        conv2d("body/conv1", 64, 128, 32, stride=2),
        conv2d("body/conv2", 128, 128, 16),
    ]
    head = [pool2d("head/avgpool", 128, 16, stride=16), linear("head/fc", 128, 10)]
    return calibrate_model("tinynet", profile, [stem, body, head])


def main() -> None:
    tinynet = build_tinynet()
    resnet = build_model("resnet18")
    print(f"tinynet: {tinynet.num_stages} stages, isolated latency "
          f"{tinynet.isolated_latency_ms():.3f} ms, mean parallelism {tinynet.mean_parallelism():.1f} SMs")

    # A safety-critical camera pipeline (HP, 60 Hz) sharing the GPU with
    # best-effort analytics (LP ResNet18 at 30 Hz).
    tasks = []
    for index in range(4):
        tasks.append(TaskSpec(task_id=index, model=tinynet, period_ms=1000.0 / 60.0,
                              priority=Priority.HIGH, phase_ms=index * 2.0))
    for index in range(4, 16):
        tasks.append(TaskSpec(task_id=index, model=resnet, period_ms=1000.0 / 30.0,
                              priority=Priority.LOW, phase_ms=index * 1.7))
    taskset = TaskSetSpec(name="edge-pipeline", tasks=tasks)

    config = DarisConfig.mps_config(4, 4.0)
    scheduler = DarisScheduler(Simulator(), taskset, config, rng=RngFactory(42))
    metrics = scheduler.run(horizon_ms=2000.0)

    print(f"\nconfiguration {config.label()} on the edge pipeline:")
    print(f"  total throughput : {metrics.total_jps:.1f} JPS")
    print(f"  HP (camera) DMR  : {metrics.high.deadline_miss_rate:.2%}, "
          f"response {metrics.high.response_time_stats()['mean']:.2f} ms mean")
    print(f"  LP (analytics)   : DMR {metrics.low.deadline_miss_rate:.2%}, "
          f"rejected {metrics.low.rejection_rate:.1%}")

    # The same pipeline under composed arrival processes: a bursty MMPP
    # (quiet/burst phases at the tasks' mean rates) and a diurnal profile
    # (sinusoidally rate-modulated Poisson).  Any WorkloadSpec drops into
    # the scheduler — or a ScenarioRequest — unchanged.
    workloads = {
        "periodic (baseline)": None,
        "bursty mmpp": WorkloadSpec.mmpp(rate_factors=(0.5, 3.0), dwell_ms=(400.0, 100.0)),
        "diurnal poisson": WorkloadSpec("poisson").with_diurnal(period_ms=500.0, amplitude=0.6),
    }
    print("\narrival-process sensitivity (same task set, same configuration):")
    for name, workload in workloads.items():
        scheduler = DarisScheduler(
            Simulator(), taskset, config, rng=RngFactory(42), workload=workload
        )
        metrics = scheduler.run(horizon_ms=2000.0)
        print(f"  {name:20s}: {metrics.total_jps:6.1f} JPS, "
              f"HP DMR {metrics.high.deadline_miss_rate:.2%}, "
              f"LP DMR {metrics.low.deadline_miss_rate:.2%}")


if __name__ == "__main__":
    main()
