#!/usr/bin/env python3
"""Quickstart: schedule the paper's ResNet18 task set with DARIS.

This example walks through the full pipeline:

1. build a calibrated DNN model and inspect its stages,
2. build the Table II task set (17 HP + 34 LP tasks at 30 jobs/s each),
3. configure DARIS with the paper's best configuration (MPS, 6 contexts,
   600 % SM oversubscription),
4. run the simulation and print throughput, deadline-miss and response-time
   results next to the paper's headline numbers.
"""

from repro import DarisConfig, RngFactory, Simulator, build_model, table2_taskset
from repro.rt.deadlines import virtual_deadline_shares
from repro.scheduler import DarisScheduler


def main() -> None:
    # 1. A calibrated workload model --------------------------------------
    model = build_model("resnet18")
    print(f"model: {model.name}")
    print(f"  isolated latency : {model.isolated_latency_ms():.2f} ms")
    print(f"  total work       : {model.total_work:.1f} SM-ms over {model.num_stages} stages")
    shares = virtual_deadline_shares(
        [stage.isolated_duration_ms(68) for stage in model.stages], relative_deadline=1000.0 / 30.0
    )
    for stage, share in zip(model.stages, shares):
        print(f"  {stage.name:<20} parallelism={stage.parallelism:5.1f} SMs"
              f"  virtual deadline share={share:5.2f} ms")

    # 2. The paper's Table II task set -------------------------------------
    taskset = table2_taskset("resnet18", model=model)
    print(f"\ntask set: {taskset.num_high} HP + {taskset.num_low} LP tasks, "
          f"demand {taskset.total_demand_jps:.0f} jobs/s")

    # 3. DARIS in its best configuration (MPS 6x1 OS6) ---------------------
    config = DarisConfig.mps_config(num_contexts=6, oversubscription=6.0)
    print(f"configuration: {config.label()}  (Np = {config.max_parallel_jobs} parallel DNNs)")

    # 4. Run ---------------------------------------------------------------
    simulator = Simulator()
    scheduler = DarisScheduler(simulator, taskset, config, rng=RngFactory(seed=7))
    metrics = scheduler.run(horizon_ms=3000.0)

    hp = metrics.high.response_time_stats()
    lp = metrics.low.response_time_stats()
    print("\nresults (paper values in parentheses):")
    print(f"  total throughput : {metrics.total_jps:7.1f} JPS   (paper: 1158, batching baseline: 1025)")
    print(f"  HP deadline miss : {metrics.high.deadline_miss_rate:7.2%} (paper: 0%)")
    print(f"  LP deadline miss : {metrics.low.deadline_miss_rate:7.2%} (paper: ~2% at this configuration)")
    print(f"  HP response time : {hp['mean']:.1f} ms mean / {hp['max']:.1f} ms max   (paper: 5-12 ms)")
    print(f"  LP response time : {lp['mean']:.1f} ms mean / {lp['max']:.1f} ms max   (paper: 5-27.5 ms)")


if __name__ == "__main__":
    main()
