#!/usr/bin/env python3
"""Compare the STR, MPS and MPS+STR partitioning policies on one workload.

Reproduces the design-space question of paper Sections II-A and VI-C: which
concurrency mechanism should a deployment use?  The example sweeps a few
representative configurations of each policy on the InceptionV3 task set and
prints throughput and deadline behaviour, illustrating the paper's conclusion:
MPS for throughput, STR for the most reliable deadlines.
"""

from repro import DarisConfig, ResultCache, ScenarioRequest, run_cached_scenarios, table2_taskset
from repro.analysis import ascii_bar_chart, format_table


def main() -> None:
    taskset = table2_taskset("inceptionv3")
    configs = [
        DarisConfig.str_config(4),
        DarisConfig.str_config(8),
        DarisConfig.mps_config(4, 4.0),
        DarisConfig.mps_config(8, 8.0),
        DarisConfig.mps_config(8, 1.0),
        DarisConfig.mps_str_config(4, 2, 4.0),
    ]

    # One worker per CPU; each scenario keeps its fixed seed, so the rows are
    # identical to running the sweep serially.  Completed scenarios are
    # memoized in the shared experiment cache, so re-running the example is
    # free (delete .cache/experiments to force re-simulation).
    cache = ResultCache(".cache/experiments")
    results = run_cached_scenarios(
        [ScenarioRequest(taskset, config, horizon_ms=3000.0, seed=3) for config in configs],
        cache=cache,
    )

    rows = []
    throughputs = {}
    for config, result in zip(configs, results):
        rows.append(
            {
                "config": config.label(),
                "total_jps": round(result.total_jps, 1),
                "hp_dmr": f"{result.hp_dmr:.2%}",
                "lp_dmr": f"{result.lp_dmr:.2%}",
                "lp_rejected": f"{result.metrics.low.rejection_rate:.1%}",
            }
        )
        throughputs[config.label()] = result.total_jps

    print(format_table(rows))
    print(f"(result cache: {cache.hits} hit(s), {cache.misses} simulated)")
    print()
    print(ascii_bar_chart(throughputs, title="InceptionV3 throughput by configuration (JPS)"))
    print(
        "\npaper expectation: MPS with 8 contexts and full oversubscription is the"
        " best configuration for InceptionV3 (~87% of its batching baseline of 446 JPS);"
        " OS=1 drops throughput sharply; STR trades throughput for zero LP misses."
    )


if __name__ == "__main__":
    main()
