#!/usr/bin/env python3
"""Batching study: is batching necessary, and does it compose with DARIS?

Reproduces the questions of paper Sections II-C and VI-H on the simulated GPU:

1. how much does pure batching help each network (Figure 1 / Table I), and
2. what does batching add on top of DARIS co-location (Figure 10)?
"""

from repro import DarisConfig, build_model, run_daris_scenario, table2_taskset
from repro.analysis import format_table
from repro.baselines import SingleTenantExecutor, saturated_batching_jps


def main() -> None:
    # Part 1: pure batching curves (Figure 1 / Table I).
    rows = []
    for name in ("resnet18", "unet", "inceptionv3"):
        model = build_model(name)
        single = SingleTenantExecutor(model).run(1000.0)
        for batch in (2, 4, 8, 16):
            jps = saturated_batching_jps(model, batch, horizon_ms=1000.0)
            rows.append(
                {
                    "model": name,
                    "batch": batch,
                    "jps": round(jps, 1),
                    "gain_vs_single": round(jps / single, 2),
                    "paper_gain_at_max": model.profile.batching_gain,
                }
            )
    print("pure batching (upper baseline):")
    print(format_table(rows))

    # Part 2: DARIS with and without batching (Figure 10).
    rows = []
    for name in ("resnet18", "unet", "inceptionv3"):
        model = build_model(name)
        batch = model.profile.preferred_batch_size
        config = DarisConfig.mps_config(6, 6.0)
        unbatched = run_daris_scenario(
            table2_taskset(name, model=model), config, horizon_ms=2500.0, seed=5
        )
        batched = run_daris_scenario(
            table2_taskset(name, model=model, batch_size=batch), config, horizon_ms=2500.0, seed=5
        )
        rows.append(
            {
                "model": name,
                "batch": batch,
                "daris_jps": round(unbatched.total_jps, 1),
                "daris_batched_jps": round(batched.total_jps * batch, 1),
                "gain": round(batched.total_jps * batch / unbatched.total_jps, 2),
                "upper_baseline": model.profile.batched_max_jps,
            }
        )
    print("\nDARIS with batching (batch sizes 4/2/8 as in the paper):")
    print(format_table(rows))
    print(
        "\npaper expectation: batching on top of DARIS needs fewer parallel tasks to"
        " beat the upper baseline; InceptionV3 gains the most (>= 55%), UNet the least (<= 18%)."
    )


if __name__ == "__main__":
    main()
