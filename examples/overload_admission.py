#!/usr/bin/env python3
"""Overload study: what happens when high-priority demand exceeds capacity?

Reproduces the scenario behind paper Figure 11.  A ResNet18 workload is driven
from full load to 150 % overload while the share of high-priority tasks grows.
Without an HP admission test, HP deadline misses explode once HP demand alone
exceeds the GPU; enabling Overload+HPA (the admission test applied to HP jobs
too) restores zero HP misses at the cost of dropping some HP jobs.
"""

from repro import DarisConfig, ResultCache, ScenarioRequest, run_cached_scenarios
from repro.analysis import format_table
from repro.rt.taskset import ratio_taskset


def main() -> None:
    config = DarisConfig.mps_config(6, 6.0)
    cells = []
    requests = []
    for hp_fraction in (1.0 / 3.0, 2.0 / 3.0, 1.0):
        for label, load, hpa in (
            ("full load", 1.0, False),
            ("overload", 1.5, False),
            ("overload+HPA", 1.5, True),
        ):
            taskset = ratio_taskset("resnet18", hp_fraction=hp_fraction, load_factor=load)
            requests.append(
                ScenarioRequest(
                    taskset, config.with_overrides(hp_admission=hpa), horizon_ms=3000.0, seed=11
                )
            )
            cells.append((hp_fraction, label))

    # The nine scenarios are independent; fan them out, one worker per CPU.
    # Completed scenarios are memoized in the shared experiment cache, so
    # re-running the example is free.
    cache = ResultCache(".cache/experiments")
    results = run_cached_scenarios(requests, cache=cache)

    rows = []
    for (hp_fraction, label), result in zip(cells, results):
        rows.append(
            {
                "hp_share": f"{hp_fraction:.0%}",
                "scenario": label,
                "total_jps": round(result.total_jps, 1),
                "hp_dmr": f"{result.hp_dmr:.2%}",
                "lp_dmr": f"{result.lp_dmr:.2%}",
                "hp_dropped": f"{result.metrics.high.rejection_rate:.1%}",
                "lp_dropped": f"{result.metrics.low.rejection_rate:.1%}",
            }
        )
    print(format_table(rows))
    print(f"(result cache: {cache.hits} hit(s), {cache.misses} simulated)")
    print(
        "\npaper expectation: throughput is stable across ratios; overloaded HP tasks"
        " miss deadlines sharply unless the HPA admission test is enabled, which trades"
        " HP drops and higher LP miss rates for (near) zero HP misses."
        "\nrecommendation from the paper: keep HP tasks below ~50% of the full load."
    )


if __name__ == "__main__":
    main()
